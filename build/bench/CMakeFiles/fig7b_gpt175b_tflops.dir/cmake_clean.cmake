file(REMOVE_RECURSE
  "CMakeFiles/fig7b_gpt175b_tflops.dir/fig7b_gpt175b_tflops.cc.o"
  "CMakeFiles/fig7b_gpt175b_tflops.dir/fig7b_gpt175b_tflops.cc.o.d"
  "fig7b_gpt175b_tflops"
  "fig7b_gpt175b_tflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_gpt175b_tflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
