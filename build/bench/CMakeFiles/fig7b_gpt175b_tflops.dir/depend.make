# Empty dependencies file for fig7b_gpt175b_tflops.
# This may be replaced when dependencies are built.
