# Empty dependencies file for fig7c_t5_scaling.
# This may be replaced when dependencies are built.
