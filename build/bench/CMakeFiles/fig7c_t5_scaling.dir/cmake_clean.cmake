file(REMOVE_RECURSE
  "CMakeFiles/fig7c_t5_scaling.dir/fig7c_t5_scaling.cc.o"
  "CMakeFiles/fig7c_t5_scaling.dir/fig7c_t5_scaling.cc.o.d"
  "fig7c_t5_scaling"
  "fig7c_t5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_t5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
