file(REMOVE_RECURSE
  "CMakeFiles/deferred_init_large_model.dir/deferred_init_large_model.cc.o"
  "CMakeFiles/deferred_init_large_model.dir/deferred_init_large_model.cc.o.d"
  "deferred_init_large_model"
  "deferred_init_large_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deferred_init_large_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
