# Empty dependencies file for deferred_init_large_model.
# This may be replaced when dependencies are built.
