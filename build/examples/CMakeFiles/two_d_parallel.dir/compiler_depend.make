# Empty compiler generated dependencies file for two_d_parallel.
# This may be replaced when dependencies are built.
