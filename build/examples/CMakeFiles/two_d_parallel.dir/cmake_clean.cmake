file(REMOVE_RECURSE
  "CMakeFiles/two_d_parallel.dir/two_d_parallel.cc.o"
  "CMakeFiles/two_d_parallel.dir/two_d_parallel.cc.o.d"
  "two_d_parallel"
  "two_d_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_d_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
