file(REMOVE_RECURSE
  "CMakeFiles/production_training.dir/production_training.cc.o"
  "CMakeFiles/production_training.dir/production_training.cc.o.d"
  "production_training"
  "production_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
