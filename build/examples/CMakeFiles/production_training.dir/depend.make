# Empty dependencies file for production_training.
# This may be replaced when dependencies are built.
