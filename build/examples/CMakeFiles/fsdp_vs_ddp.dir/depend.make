# Empty dependencies file for fsdp_vs_ddp.
# This may be replaced when dependencies are built.
