file(REMOVE_RECURSE
  "CMakeFiles/fsdp_vs_ddp.dir/fsdp_vs_ddp.cc.o"
  "CMakeFiles/fsdp_vs_ddp.dir/fsdp_vs_ddp.cc.o.d"
  "fsdp_vs_ddp"
  "fsdp_vs_ddp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdp_vs_ddp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
