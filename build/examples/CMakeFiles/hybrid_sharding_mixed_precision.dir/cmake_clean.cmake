file(REMOVE_RECURSE
  "CMakeFiles/hybrid_sharding_mixed_precision.dir/hybrid_sharding_mixed_precision.cc.o"
  "CMakeFiles/hybrid_sharding_mixed_precision.dir/hybrid_sharding_mixed_precision.cc.o.d"
  "hybrid_sharding_mixed_precision"
  "hybrid_sharding_mixed_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_sharding_mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
