# Empty compiler generated dependencies file for hybrid_sharding_mixed_precision.
# This may be replaced when dependencies are built.
