// End-to-end integration / soak tests: long multi-rank training runs with
// every feature enabled at once, loss-decrease assertions, LR scheduling,
// and storage leak checks.
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "core/fsdp_utils.h"
#include "core/optim_state.h"
#include "nn/transformer.h"
#include "optim/grad_scaler.h"
#include "optim/lr_scheduler.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

TEST(LrSchedulerTest, WarmupCosineShape) {
  optim::WarmupCosine sched(1.0f, 10, 110, 0.1f);
  // Warmup: linear 0 -> base.
  EXPECT_NEAR(sched.Step(), 0.1f, 1e-6f);   // step 1
  for (int i = 0; i < 8; ++i) sched.Step();
  EXPECT_NEAR(sched.lr(), 0.9f, 1e-6f);     // step 9
  EXPECT_NEAR(sched.Step(), 1.0f, 1e-6f);   // step 10 = peak
  // Mid-decay (step 60 = halfway): cosine(0.5) -> (base+min)/2.
  sched.set_step_count(60);
  EXPECT_NEAR(sched.lr(), 0.55f, 1e-4f);
  // End and beyond: clamps at min.
  sched.set_step_count(110);
  EXPECT_NEAR(sched.lr(), 0.1f, 1e-5f);
  sched.set_step_count(500);
  EXPECT_NEAR(sched.lr(), 0.1f, 1e-5f);
}

TEST(LrSchedulerTest, StepDecay) {
  optim::StepDecay sched(0.8f, 5, 0.5f);
  for (int i = 0; i < 4; ++i) sched.Step();
  EXPECT_NEAR(sched.lr(), 0.8f, 1e-6f);  // step 4: no decay yet
  sched.Step();
  EXPECT_NEAR(sched.lr(), 0.4f, 1e-6f);  // step 5
  sched.set_step_count(15);
  EXPECT_NEAR(sched.lr(), 0.1f, 1e-6f);  // 3 decays
}

TEST(LrSchedulerTest, DrivesOptimizer) {
  Tensor p = Tensor::Zeros({1});
  p.set_requires_grad(true);
  optim::SGD sgd({p}, /*lr=*/0.f);
  optim::StepDecay sched(1.0f, 100, 0.5f);
  sgd.set_lr(sched.Step());
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  p.set_grad(Tensor::Ones({1}));
  sgd.Step();
  EXPECT_FLOAT_EQ(p.item(), -1.f);
}

TEST(IntegrationTest, EverythingOnSoakRun) {
  // 4 ranks, 30 steps, with: deferred init, block wrapping, BF16 mixed
  // precision, activation checkpointing, backward+forward prefetch, rate
  // limiter, gradient accumulation (2 microbatches, alternating modes),
  // global grad clipping, warmup-cosine LR, FP16-free sharded scaler off
  // (BF16 needs none). Loss must drop substantially and no storage may leak.
  const int w = 4;
  const int64_t live_before = Storage::live_bytes();
  {
    comm::DeviceMesh mesh(w, w);
    std::vector<float> first(w), last(w);
    RunOnRanks(w, [&](int r) {
      nn::TransformerConfig cfg;
      cfg.vocab_size = 89;
      cfg.max_seq = 12;
      cfg.dim = 24;
      cfg.num_heads = 4;
      cfg.num_layers = 3;
      cfg.checkpoint_blocks = true;
      nn::InitCtx fake(Device::kFake, 321);
      auto model = std::make_shared<nn::TransformerModel>(cfg, fake);

      core::FsdpOptions opts;
      opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
      opts.mixed_precision.param_dtype = DType::kBF16;
      opts.mixed_precision.reduce_dtype = DType::kBF16;
      opts.forward_prefetch = true;
      opts.limit_all_gathers = 2;
      auto state = core::FullyShard(model, mesh, r, opts);
      optim::Adam adam(state->Parameters(), {.lr = 0.f});
      optim::WarmupCosine sched(8e-3f, 5, 40);

      std::vector<int64_t> toks(12), tgts(12);
      for (int i = 0; i < 12; ++i) {
        toks[i] = (r * 29 + i * 7) % 89;
        tgts[i] = (toks[i] + 3) % 89;
      }
      Tensor tokens = ops::IndexTensor(toks, {1, 12});
      Tensor targets = ops::IndexTensor(tgts, {12});

      for (int step = 0; step < 30; ++step) {
        adam.ZeroGrad();
        float loss_val = 0;
        // Alternate accumulation-with and without communication.
        {
          core::FsdpNoSyncGuard guard(*state);
          if (step % 2 == 0) {
            Tensor loss =
                ops::CrossEntropy((*model)(tokens), targets);
            autograd::RunBackward(ops::ScalarMul(loss, 0.5f));
          }
        }
        if (step % 2 != 0) {
          Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
          autograd::RunBackward(ops::ScalarMul(loss, 0.5f));
        }
        Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
        loss_val = loss.item();
        autograd::RunBackward(ops::ScalarMul(loss, 0.5f));

        core::ClipGradNorm(*state, 5.0f);
        adam.set_lr(sched.Step());
        adam.Step();
        if (step == 0) first[r] = loss_val;
        last[r] = loss_val;
        ASSERT_FALSE(std::isnan(loss_val)) << "step " << step;
      }
      // Rate limiter honored throughout.
      ASSERT_LE(state->max_inflight_unshards(), 2);
      // Checkpoint machinery round trip at the end.
      auto pstate = state->FullStateDict();
      auto ostate = core::GatherFullOptimState(*state, adam);
      ASSERT_GT(pstate.size(), 0u);
      ASSERT_EQ(ostate.size(), pstate.size());  // params only, no buffers
    });
    for (int r = 0; r < w; ++r) {
      EXPECT_LT(last[r], first[r] * 0.6f)
          << "rank " << r << ": " << first[r] << " -> " << last[r];
    }
  }
  // Everything destructed: no leaked storages.
  EXPECT_EQ(Storage::live_bytes(), live_before);
}

TEST(IntegrationTest, RepeatedConstructionDoesNotLeak) {
  const int64_t live_before = Storage::live_bytes();
  for (int round = 0; round < 3; ++round) {
    comm::DeviceMesh mesh(2, 2);
    RunOnRanks(2, [&](int r) {
      nn::InitCtx ctx(Device::kCpu, 1);
      auto model = std::make_shared<nn::MLP>(8, 16, ctx);
      auto state = core::FullyShard(model, mesh, r, {});
      Rng rng(r + 1, 0);
      Tensor y = (*model)(Tensor::Randn({2, 8}, rng));
      autograd::RunBackward(ops::Sum(y));
    });
  }
  EXPECT_EQ(Storage::live_bytes(), live_before);
}

TEST(IntegrationTest, InitRecorderDrainsAfterMaterialization) {
  const int64_t records_before = nn::InitRecorder::NumRecorded();
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    nn::InitCtx fake(Device::kFake, 2);
    auto model = std::make_shared<nn::MLP>(8, 16, fake);
    auto state = core::FullyShard(model, mesh, r, {});
    (void)state;
  });
  EXPECT_EQ(nn::InitRecorder::NumRecorded(), records_before);
}

}  // namespace
}  // namespace fsdp
