// Property-based tests: randomized sweeps over models, shapes, partitions,
// and the full FP16 value space, driven by parameterized gtest suites.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "nn/layers.h"
#include "optim/optimizer.h"
#include "tensor/kernels.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

// ---------------------------------------------------------------- FP16/BF16

float DecodeHalfBits(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;
    } else {
      // Subnormal: value = mant * 2^-24.
      float v = std::ldexp(static_cast<float>(mant), -24);
      std::memcpy(&bits, &v, 4);
      bits |= sign;
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (mant << 13);
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float out;
  std::memcpy(&out, &bits, 4);
  return out;
}

TEST(Fp16Property, ExhaustiveIdempotence) {
  // Every one of the 65536 FP16 values must quantize to itself.
  for (uint32_t h = 0; h < 0x10000u; ++h) {
    const float v = DecodeHalfBits(static_cast<uint16_t>(h));
    const float q = QuantizeF16(v);
    if (std::isnan(v)) {
      ASSERT_TRUE(std::isnan(q)) << "bits " << h;
    } else {
      ASSERT_EQ(q, v) << "bits " << h << " value " << v;
    }
  }
}

TEST(Fp16Property, RoundsToNearestRepresentable) {
  Rng rng(77, 0);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(rng.NextUniform(-70000, 70000));
    const float q = QuantizeF16(x);
    if (std::isinf(q)) {
      ASSERT_GT(std::fabs(x), 65504.f * (1 - 1.f / 2048));
      continue;
    }
    // q must be representable and no further than half a local ULP.
    ASSERT_EQ(QuantizeF16(q), q);
    const float ulp = std::fabs(q) > 1e-7f
                          ? std::fabs(q) / 1024.f
                          : std::ldexp(1.f, -24);
    ASSERT_LE(std::fabs(q - x), ulp * 0.5001f + 1e-12f) << x;
  }
}

TEST(Bf16Property, IdempotentAndMonotone) {
  Rng rng(78, 0);
  float prev_in = -1e30f, prev_out = QuantizeBF16(prev_in);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(rng.NextNormal(0, 1e10));
    const float q = QuantizeBF16(x);
    ASSERT_EQ(QuantizeBF16(q), q);
    // Monotone: order of two random values is preserved.
    if (x >= prev_in) {
      ASSERT_GE(q, prev_out) << x << " vs " << prev_in;
    } else {
      ASSERT_LE(q, prev_out);
    }
    prev_in = x;
    prev_out = q;
  }
}

// ------------------------------------------------------------------- GEMM

class GemmProperty : public ::testing::TestWithParam<int> {};

TEST_P(GemmProperty, MatchesNaiveReference) {
  Rng rng(static_cast<uint64_t>(GetParam()), 0);
  const int64_t m = 1 + static_cast<int64_t>(rng.NextBelow(17));
  const int64_t n = 1 + static_cast<int64_t>(rng.NextBelow(17));
  const int64_t k = 1 + static_cast<int64_t>(rng.NextBelow(17));
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor at = Tensor::Empty({k, m});
  Tensor bt = Tensor::Empty({n, k});
  kernels::Transpose2D(a.data(), at.data(), m, k);
  kernels::Transpose2D(b.data(), bt.data(), k, n);

  Tensor ref = Tensor::Zeros({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at({i, p})) * b.at({p, j});
      }
      ref.set_at({i, j}, static_cast<float>(acc));
    }
  }
  Tensor c = Tensor::Empty({m, n});
  struct Case {
    const float* a;
    const float* b;
    bool ta, tb;
  };
  for (const Case& cs : {Case{a.data(), b.data(), false, false},
                         Case{at.data(), b.data(), true, false},
                         Case{a.data(), bt.data(), false, true},
                         Case{at.data(), bt.data(), true, true}}) {
    kernels::Gemm(cs.a, cs.b, c.data(), m, n, k, cs.ta, cs.tb, false);
    ASSERT_TRUE(c.AllClose(ref, 1e-4f, 1e-5f))
        << "ta=" << cs.ta << " tb=" << cs.tb << " " << m << "x" << n << "x"
        << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, GemmProperty, ::testing::Range(0, 24));

// ----------------------------------------------------------- flat params

class FlatParamProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlatParamProperty, RandomPartitionRoundTripsAndCovers) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100, 0);
  const int f = 1 + static_cast<int>(rng.NextBelow(8));
  const int n_params = 1 + static_cast<int>(rng.NextBelow(6));
  auto comm = std::make_shared<comm::Communicator>(f);
  RunOnRanks(f, [&](int r) {
    Rng local_rng(static_cast<uint64_t>(GetParam()) + 100, 1);
    std::vector<Tensor> owners;
    std::vector<std::pair<std::string, Tensor*>> named;
    for (int i = 0; i < n_params; ++i) {
      Shape shape;
      const int dims = 1 + static_cast<int>(local_rng.NextBelow(3));
      for (int d = 0; d < dims; ++d) {
        shape.push_back(1 + static_cast<int64_t>(local_rng.NextBelow(7)));
      }
      owners.push_back(Tensor::Randn(shape, local_rng));
    }
    for (int i = 0; i < n_params; ++i) {
      named.emplace_back("p" + std::to_string(i), &owners[i]);
    }
    std::vector<Tensor> originals;
    for (auto& t : owners) originals.push_back(t.Clone());

    core::FlatParamHandle h("prop", core::BuildParamInfos(named),
                            comm::ProcessGroup(comm, r),
                            comm::ProcessGroup(), core::MixedPrecision{});
    ASSERT_LT(h.padding_numel(), f);
    h.MaterializeAndShard(false);

    // Round trip: gather returns the original values and shapes.
    auto full = h.GatherFullParams();
    ASSERT_EQ(full.size(), static_cast<size_t>(n_params));
    for (int i = 0; i < n_params; ++i) {
      ASSERT_EQ(full[i].second.shape(), originals[i].shape());
      ASSERT_TRUE(full[i].second.AllClose(originals[i], 0, 0));
    }
    // Unshard restores views.
    h.Unshard();
    h.UseUnshardedViews();
    for (int i = 0; i < n_params; ++i) {
      ASSERT_TRUE(owners[i].AllClose(originals[i], 0, 0));
    }
  });
  // Extents: union over ranks covers each param exactly once.
  std::vector<std::vector<core::FlatParamHandle::ShardExtent>> extents(f);
  auto comm2 = std::make_shared<comm::Communicator>(f);
  RunOnRanks(f, [&](int r) {
    Rng local_rng(static_cast<uint64_t>(GetParam()) + 100, 1);
    std::vector<Tensor> owners;
    std::vector<std::pair<std::string, Tensor*>> named;
    for (int i = 0; i < n_params; ++i) {
      Shape shape;
      const int dims = 1 + static_cast<int>(local_rng.NextBelow(3));
      for (int d = 0; d < dims; ++d) {
        shape.push_back(1 + static_cast<int64_t>(local_rng.NextBelow(7)));
      }
      owners.push_back(Tensor::Randn(shape, local_rng));
    }
    for (int i = 0; i < n_params; ++i) {
      named.emplace_back("p" + std::to_string(i), &owners[i]);
    }
    core::FlatParamHandle h("prop", core::BuildParamInfos(named),
                            comm::ProcessGroup(comm2, r),
                            comm::ProcessGroup(), core::MixedPrecision{});
    extents[r] = h.LocalShardExtents();
  });
  for (int i = 0; i < n_params; ++i) {
    int64_t covered = 0, param_numel = -1;
    int64_t expect_end = 0;
    for (int r = 0; r < f; ++r) {
      covered += extents[r][i].end - extents[r][i].start;
      if (extents[r][i].end > extents[r][i].start) {
        ASSERT_EQ(extents[r][i].start, expect_end) << "gap/overlap";
        expect_end = extents[r][i].end;
      }
      param_numel = std::max(param_numel, extents[r][i].end);
    }
    ASSERT_EQ(covered, expect_end);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPartitions, FlatParamProperty,
                         ::testing::Range(0, 16));

// --------------------------------------------------- random-model sweeps

/// Random module tree: a Sequential of 2-4 blocks, each randomly an MLP or
/// a Linear(+LayerNorm) pair, random widths; the wrap policy randomly
/// annotates block types.
nn::ModulePtr RandomModel(uint64_t seed, int64_t dim) {
  nn::InitCtx ctx(Device::kCpu, seed);
  Rng rng(seed, 7);
  auto seq = std::make_shared<nn::Sequential>();
  const int blocks = 2 + static_cast<int>(rng.NextBelow(3));
  for (int b = 0; b < blocks; ++b) {
    if (rng.NextUniform() < 0.5) {
      seq->Append(std::make_shared<nn::MLP>(
          dim, dim + static_cast<int64_t>(rng.NextBelow(9)), ctx,
          rng.NextUniform() < 0.5));
    } else {
      auto inner = std::make_shared<nn::Sequential>();
      inner->Append(std::make_shared<nn::Linear>(dim, dim, true, ctx));
      inner->Append(std::make_shared<nn::LayerNorm>(dim, ctx));
      seq->Append(inner);
    }
  }
  seq->Append(std::make_shared<nn::Linear>(dim, 3, true, ctx));
  return seq;
}

struct RandomSweepCase {
  int seed;
  int world;
  core::ShardingStrategy strategy;
  int factor;
};

class RandomModelSweep : public ::testing::TestWithParam<RandomSweepCase> {};

TEST_P(RandomModelSweep, FsdpGradsMatchLocal) {
  const auto& c = GetParam();
  const int64_t dim = 6;
  Rng data_rng(static_cast<uint64_t>(c.seed) + 500, 0);
  std::vector<Tensor> batches;
  for (int r = 0; r < c.world; ++r) {
    batches.push_back(Tensor::Randn({2, dim}, data_rng));
  }

  // Local reference gradients.
  std::map<std::string, Tensor> ref;
  {
    auto model = RandomModel(static_cast<uint64_t>(c.seed), dim);
    for (int r = 0; r < c.world; ++r) {
      Tensor y = (*model)(batches[r]);
      autograd::RunBackward(
          ops::ScalarMul(ops::Mean(ops::Mul(y, y)), 1.f / c.world));
    }
    for (auto& [name, slot] : model->NamedParameters()) {
      ref[name] = slot->grad();
    }
  }

  comm::DeviceMesh mesh(c.world, c.factor);
  RunOnRanks(c.world, [&](int r) {
    auto model = RandomModel(static_cast<uint64_t>(c.seed), dim);
    core::FsdpOptions opts;
    opts.strategy = c.strategy;
    // Randomly wrap MLPs and/or Sequentials based on the seed.
    if (c.seed % 3 == 0) {
      opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP"});
    } else if (c.seed % 3 == 1) {
      opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP", "Sequential"});
    }  // else: single root unit
    auto state = core::FullyShard(model, mesh, r, opts);
    Tensor y = (*model)(batches[r]);
    autograd::RunBackward(ops::Mean(ops::Mul(y, y)));
    for (int u = 0; u < state->num_units(); ++u) {
      for (auto& [fqn, grad] : state->unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.defined()) << fqn;
        ASSERT_TRUE(grad.AllClose(ref.at(fqn), 2e-4f, 1e-5f))
            << "seed " << c.seed << " rank " << r << " " << fqn;
      }
    }
  });
}

std::vector<RandomSweepCase> MakeSweep() {
  std::vector<RandomSweepCase> cases;
  const core::ShardingStrategy strategies[] = {
      core::ShardingStrategy::kFullShard,
      core::ShardingStrategy::kShardGradOp,
      core::ShardingStrategy::kHybridShard,
  };
  int seed = 0;
  for (int world : {2, 4}) {
    for (auto s : strategies) {
      for (int rep = 0; rep < 3; ++rep) {
        int factor = world;
        if (s == core::ShardingStrategy::kHybridShard) factor = world / 2;
        if (factor < 1) factor = 1;
        cases.push_back({seed++, world, s, factor});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomModelSweep,
                         ::testing::ValuesIn(MakeSweep()));

// --------------------------------------------------- collective properties

class CollectiveProperty : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveProperty, ReduceScatterThenAllGatherEqualsAllReduce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 900, 0);
  const int w = 2 + static_cast<int>(rng.NextBelow(5));
  const int64_t per_rank = 1 + static_cast<int64_t>(rng.NextBelow(33));
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Rng vrng(static_cast<uint64_t>(GetParam()) + 900, 10 + r);
    Tensor src = Tensor::Randn({w * per_rank}, vrng);
    // Path A: AllReduce.
    Tensor a = src.Clone();
    pg.AllReduce(a);
    // Path B: ReduceScatter then AllGatherBase.
    Tensor chunk = Tensor::Empty({per_rank});
    pg.ReduceScatter(chunk, src);
    Tensor b = Tensor::Empty({w * per_rank});
    pg.AllGatherBase(b, chunk);
    ASSERT_TRUE(a.AllClose(b, 1e-5f, 1e-6f)) << "w=" << w;
  });
}

INSTANTIATE_TEST_SUITE_P(RandomWorlds, CollectiveProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace fsdp
