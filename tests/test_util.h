// Shared helpers for the test suite.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace fsdp::testing {

/// A "pipeline stage": a small MLP stack mapping dim -> dim. Stages chained
/// sequentially on every rank emulate the 1F1B-free functional schedule
/// (each rank drives both stages; real pipelining is a scheduling concern,
/// while FSDP's interop concern is the per-micro-batch unshard traffic).
/// Shared by the pipeline interop tests and the composed FSDP×TP×PP tests.
inline nn::ModulePtr MakePipelineStage(uint64_t seed, int64_t dim) {
  nn::InitCtx ctx(Device::kCpu, seed);
  auto seq = std::make_shared<nn::Sequential>();
  seq->Append(std::make_shared<nn::MLP>(dim, 2 * dim, ctx));
  seq->Append(std::make_shared<nn::MLP>(dim, 2 * dim, ctx));
  return seq;
}

/// Checks analytic gradients of `fn` w.r.t. every tensor in `inputs` against
/// central finite differences. `fn` must return a scalar tensor and be pure.
inline void CheckGradients(
    const std::function<Tensor()>& fn, const std::vector<Tensor>& inputs,
    float eps = 1e-3f, float rtol = 5e-2f, float atol = 1e-3f) {
  // Analytic pass.
  for (const Tensor& t : inputs) {
    Tensor(t).zero_grad();
  }
  Tensor loss = fn();
  autograd::RunBackward(loss);

  for (size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor t = inputs[ti];
    Tensor grad = t.grad();
    ASSERT_TRUE(grad.defined()) << "no grad for input " << ti;
    float* data = t.data();
    const float* g = grad.data();
    const int64_t n = t.numel();
    // Probe a bounded number of coordinates to keep tests fast.
    const int64_t stride = std::max<int64_t>(1, n / 13);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = data[i];
      data[i] = orig + eps;
      const float up = fn().item();
      data[i] = orig - eps;
      const float down = fn().item();
      data[i] = orig;
      const float numeric = (up - down) / (2.f * eps);
      EXPECT_NEAR(g[i], numeric, atol + rtol * std::fabs(numeric))
          << "input " << ti << " coord " << i;
    }
  }
}

/// EXPECT that two tensors match elementwise within tolerances.
inline void ExpectAllClose(const Tensor& a, const Tensor& b,
                           float rtol = 1e-5f, float atol = 1e-6f) {
  ASSERT_TRUE(a.defined() && b.defined());
  ASSERT_EQ(a.numel(), b.numel());
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(pa[i], pb[i], atol + rtol * std::fabs(pb[i]))
        << "at flat index " << i;
  }
}

}  // namespace fsdp::testing
