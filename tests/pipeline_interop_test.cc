// Pipeline-parallel interoperability (paper Sec 7.1.1): wrapping each
// pipeline stage with FSDP works functionally, but under FULL_SHARD every
// micro-batch re-AllGathers the stage's parameters; SHARD_GRAD_OP keeps
// parameters unsharded across micro-batches, avoiding the per-micro-batch
// AllGather at the cost of holding the stage unsharded.
#include <gtest/gtest.h>

#include <map>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "nn/layers.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using testing::MakePipelineStage;

int CountEvents(const std::vector<obs::TraceEvent>& events,
                obs::EventKind kind) {
  int n = 0;
  for (const auto& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

TEST(PipelineInteropTest, ShardGradOpAvoidsPerMicrobatchAllGather) {
  const int w = 2;
  const int kMicrobatches = 4;
  comm::DeviceMesh mesh(w, w);
  std::map<std::string, int> ag_counts;
  std::mutex mu;

  for (auto strategy : {core::ShardingStrategy::kFullShard,
                        core::ShardingStrategy::kShardGradOp}) {
    RunOnRanks(w, [&](int r) {
      auto stage = MakePipelineStage(3, 8);
      core::FsdpOptions opts;
      opts.strategy = strategy;
      opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP"});
      auto state = core::FullyShard(stage, mesh, r, opts);
      optim::SGD sgd(state->Parameters(), 0.05f);

      Rng rng(r + 1, 0);
      state->ClearEvents();
      // One optimizer step over several micro-batches: accumulate without
      // communication until the last one (the pipeline pattern).
      for (int mb = 0; mb < kMicrobatches; ++mb) {
        if (mb + 1 < kMicrobatches) {
          core::FsdpNoSyncGuard guard(*state);
          Tensor x = Tensor::Randn({2, 8}, rng);
          Tensor y = (*stage)(x);
          autograd::RunBackward(ops::Mean(ops::Mul(y, y)));
        } else {
          Tensor x = Tensor::Randn({2, 8}, rng);
          Tensor y = (*stage)(x);
          autograd::RunBackward(ops::Mean(ops::Mul(y, y)));
        }
      }
      sgd.Step();
      if (r == 0) {
        std::lock_guard<std::mutex> lock(mu);
        ag_counts[core::ShardingStrategyName(strategy)] =
            CountEvents(state->trace_events(), obs::EventKind::kAllGather);
      }
    });
  }

  // FULL_SHARD re-gathers per micro-batch in backward (forward keeps the
  // unsharded no-sync params), SHARD_GRAD_OP gathers each unit once.
  const int full = ag_counts.at("FULL_SHARD");
  const int zero2 = ag_counts.at("SHARD_GRAD_OP");
  EXPECT_GT(full, zero2);
  // 2 MLP units (the Sequential root owns no parameters, so it forms no
  // unit), each gathered exactly once under SHARD_GRAD_OP.
  EXPECT_EQ(zero2, 2);
}

TEST(PipelineInteropTest, TwoStagePipelineTrainsCorrectly) {
  // Two FSDP-wrapped stages chained, activations flowing between them, with
  // per-micro-batch losses on the final stage — equivalence vs one local
  // model of both stages.
  const int w = 2;
  const int kMicrobatches = 2;
  comm::DeviceMesh mesh(w, w);

  // Local reference: stage1 -> stage2 as one graph.
  std::map<std::string, Tensor> ref;
  {
    auto s1 = MakePipelineStage(11, 8);
    auto s2 = MakePipelineStage(12, 8);
    std::vector<Tensor> params;
    for (auto* m : {s1.get(), s2.get()}) {
      for (Tensor* slot : m->ParameterSlots()) params.push_back(*slot);
    }
    optim::SGD sgd(params, 0.05f);
    for (int mb = 0; mb < kMicrobatches; ++mb) {
      for (int r = 0; r < w; ++r) {
        Rng rng(1000 + mb * w + r, 0);
        Tensor x = Tensor::Randn({2, 8}, rng);
        Tensor y = (*s2)((*s1)(x));
        autograd::RunBackward(ops::ScalarMul(ops::Mean(ops::Mul(y, y)),
                                             1.f / w));
      }
    }
    sgd.Step();
    for (auto& [n, slot] : s1->NamedParameters()) ref["s1." + n] = *slot;
    for (auto& [n, slot] : s2->NamedParameters()) ref["s2." + n] = *slot;
  }

  RunOnRanks(w, [&](int r) {
    auto s1 = MakePipelineStage(11, 8);
    auto s2 = MakePipelineStage(12, 8);
    core::FsdpOptions opts;
    opts.strategy = core::ShardingStrategy::kShardGradOp;  // Sec 7.1.1 advice
    opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP"});
    auto st1 = core::FullyShard(s1, mesh, r, opts);
    // Each stage gets its OWN communicators so its collectives cannot
    // interleave with the other stage's (one mesh per pipeline stage).
    static comm::DeviceMesh mesh2(2, 2);
    auto st2 = core::FullyShard(s2, mesh2, r, opts);
    std::vector<Tensor> params = st1->Parameters();
    for (Tensor& p : st2->Parameters()) params.push_back(p);
    optim::SGD sgd(params, 0.05f);
    for (int mb = 0; mb < kMicrobatches; ++mb) {
      Rng rng(1000 + mb * w + r, 0);
      Tensor x = Tensor::Randn({2, 8}, rng);
      Tensor y = (*s2)((*s1)(x));  // activations cross the stage boundary
      autograd::RunBackward(ops::Mean(ops::Mul(y, y)));
    }
    sgd.Step();
    for (auto& [fqn, value] : st1->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at("s1." + fqn), 1e-4f, 1e-5f))
          << "s1." << fqn;
    }
    for (auto& [fqn, value] : st2->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at("s2." + fqn), 1e-4f, 1e-5f))
          << "s2." << fqn;
    }
  });
}

}  // namespace
}  // namespace fsdp
