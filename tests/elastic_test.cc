// Elastic FSDP tests: the generation-numbered rendezvous (full-house and
// deadline finalization, split-brain guard, fresh-joiner rank assignment),
// sharded-checkpoint set discovery, and the three elastic drills over
// TrainLoopDriver — kill a rank mid-backward and prove the recovered world
// converges bitwise-identically to an uninterrupted run resumed from the
// same checkpoint; shrink 8 -> 6 after a double rank loss; grow 6 -> 8
// through a planned resize with fresh joiners.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "comm/process_group.h"
#include "common/threading.h"
#include "core/fsdp.h"
#include "elastic/driver.h"
#include "elastic/rendezvous.h"
#include "elastic/sharded_ckpt.h"
#include "nn/transformer.h"
#include "obs/artifact.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using comm::FaultKind;
using elastic::DriverConfig;
using elastic::RendezvousStore;
using elastic::RunResult;
using elastic::TrainLoopDriver;
using elastic::WorldView;
using fsdp::testing::ExpectAllClose;

void UseTempArtifactDir() {
  ::setenv("FSDP_ARTIFACT_DIR", ::testing::TempDir().c_str(), 1);
}

int64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Get().GetCounter(name).value();
}

std::string TempStem(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void RemoveShardFiles(const std::string& stem) {
  namespace fs = std::filesystem;
  const fs::path p(stem);
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(
           p.has_parent_path() ? p.parent_path() : fs::path("."), ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind(p.filename().string() + ".step", 0) == 0) {
      fs::remove(e.path(), ec);
    }
  }
}

nn::ModulePtr MakeModel(uint64_t seed) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank, int64_t step) {
  const int64_t r = rank + 3 * step;
  return ops::IndexTensor(
      {(r * 3 + 1) % 13, (r * 5 + 2) % 13, (r * 7 + 3) % 13, (r + 4) % 13},
      {1, 4});
}

Tensor RankTargets(int rank, int64_t step) {
  const int64_t r = rank + 3 * step;
  return ops::IndexTensor(
      {(r + 5) % 13, (r + 6) % 13, (r + 7) % 13, (r + 8) % 13}, {4});
}

core::FsdpOptions DrillFsdpOptions() {
  core::FsdpOptions opts;
  opts.strategy = core::ShardingStrategy::kFullShard;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
  return opts;
}

/// The drills key faults on a unit's collectives; unit FQNs are stable
/// across world sizes, so probe them from a single-rank instance.
std::string ProbeUnitName(int index) {
  comm::DeviceMesh mesh(1, 1);
  auto model = MakeModel(42);
  auto state = core::FullyShard(model, mesh, 0, DrillFsdpOptions());
  EXPECT_GT(state->num_units(), index);
  return state->unit_name(index);
}

DriverConfig BaseDrillConfig() {
  DriverConfig cfg;
  cfg.model_factory = [] { return MakeModel(42); };
  cfg.loss_fn = [](nn::Module& m, int rank, int /*world*/, int64_t step) {
    return ops::CrossEntropy(m(RankTokens(rank, step)),
                             RankTargets(rank, step));
  };
  cfg.fsdp = DrillFsdpOptions();
  cfg.adam = {.lr = 1e-2f};
  cfg.watchdog_ms = 150;
  cfg.rendezvous_timeout_ms = 10000;
  return cfg;
}

// ---------------------------------------------------------------------------
// Rendezvous.
// ---------------------------------------------------------------------------

TEST(RendezvousTest, FullHouseFormsWorldAndKeepsSurvivorOrder) {
  RendezvousStore store;
  std::vector<Result<WorldView>> views;
  for (int i = 0; i < 4; ++i) views.emplace_back(Status::OK());
  RunOnRanks(4, [&](int r) { views[r] = store.Join(r, 4); });
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(views[r].ok()) << views[r].status().ToString();
    EXPECT_EQ(views[r]->generation, 1);
    EXPECT_EQ(views[r]->world_size, 4);
    EXPECT_EQ(views[r]->rank, r);  // survivors keep relative (sorted) order
    ASSERT_NE(views[r]->mesh, nullptr);
    EXPECT_EQ(views[r]->mesh->world_size(), 4);
    ASSERT_EQ(views[r]->members.size(), 4u);
    for (int m = 0; m < 4; ++m) EXPECT_EQ(views[r]->members[m], m);
  }
  // All four shared ONE mesh instance.
  EXPECT_EQ(views[0]->mesh.get(), views[1]->mesh.get());
  EXPECT_EQ(store.generation(), 1);
}

TEST(RendezvousTest, DeadlineFinalizesWithWhoeverMadeIt) {
  RendezvousStore::Options opts;
  opts.join_timeout_ms = 150;
  RendezvousStore store(opts);
  // Old ranks {0, 2, 3} of a former 4-world join expecting 4; the fourth
  // never shows. The deadline forms a 3-world, ranks reassigned densely.
  const std::vector<int> old_ranks = {0, 2, 3};
  std::vector<Result<WorldView>> views;
  for (int i = 0; i < 3; ++i) views.emplace_back(Status::OK());
  RunOnRanks(3, [&](int i) { views[i] = store.Join(old_ranks[i], 4); });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(views[i].ok()) << views[i].status().ToString();
    EXPECT_EQ(views[i]->world_size, 3);
    EXPECT_EQ(views[i]->rank, i);  // 0->0, 2->1, 3->2
    ASSERT_EQ(views[i]->members.size(), 3u);
    EXPECT_EQ(views[i]->members[1], 2);
    EXPECT_EQ(views[i]->members[2], 3);
  }
}

TEST(RendezvousTest, ExpectationMismatchIsRejected) {
  RendezvousStore::Options opts;
  opts.join_timeout_ms = 2000;
  RendezvousStore store(opts);
  std::thread first([&] {
    Result<WorldView> v = store.Join(0, 2);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v->world_size, 2);
  });
  // Let the first joiner open the round pinned at 2 participants.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Result<WorldView> bad = store.Join(1, 3);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("mismatch"), std::string::npos)
      << bad.status().message();
  Result<WorldView> good = store.Join(1, 2);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  first.join();
}

TEST(RendezvousTest, FreshJoinersTakeHighestRanksAndGenerationsAdvance) {
  RendezvousStore store;
  // Generation 1: old ranks {0, 1}.
  RunOnRanks(2, [&](int r) {
    Result<WorldView> v = store.Join(r, 2);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->generation, 1);
  });
  // Generation 2: survivor (old rank 1) + a fresh joiner fenced to sit out
  // generation 1 (it was launched knowing only "join the SECOND world").
  Result<WorldView> survivor = Status::OK();
  Result<WorldView> fresh = Status::OK();
  std::thread joiner(
      [&] { fresh = store.Join(-1, 2, /*min_generation=*/2); });
  std::thread old([&] { survivor = store.Join(1, 2); });
  joiner.join();
  old.join();
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(survivor->generation, 2);
  EXPECT_EQ(fresh->generation, 2);
  EXPECT_EQ(survivor->rank, 0);  // survivors come first
  EXPECT_EQ(fresh->rank, 1);     // fresh joiners take the high ranks
  ASSERT_EQ(fresh->members.size(), 2u);
  EXPECT_EQ(fresh->members[0], 1);
  EXPECT_EQ(fresh->members[1], -1);
}

// ---------------------------------------------------------------------------
// Sharded checkpoint set discovery.
// ---------------------------------------------------------------------------

TEST(ShardedCkptTest, IncompleteSetsAreInvisible) {
  const std::string stem = TempStem("setscan");
  RemoveShardFiles(stem);
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  std::vector<std::shared_ptr<core::FsdpState>> states(w);
  std::vector<nn::ModulePtr> models(w);
  RunOnRanks(w, [&](int r) {
    models[r] = MakeModel(42);
    states[r] = core::FullyShard(models[r], mesh, r, DrillFsdpOptions());
    ASSERT_TRUE(
        elastic::SaveShardedCheckpoint(stem, 0, *states[r], nullptr).ok());
  });
  EXPECT_EQ(elastic::LatestShardedStep(stem), 0);
  // A half-written later set (only rank 0's file) must be ignored.
  RunOnRanks(1, [&](int r) {
    ASSERT_TRUE(
        elastic::SaveShardedCheckpoint(stem, 5, *states[r], nullptr).ok());
  });
  EXPECT_EQ(elastic::LatestShardedStep(stem), 0);
  auto latest = elastic::AssembleShardedCheckpoint(stem, 0);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->world_size, 2);
  EXPECT_EQ(latest->train_step, 0);
  // Asking for the incomplete step explicitly fails.
  EXPECT_FALSE(elastic::AssembleShardedCheckpoint(stem, 5).ok());
  RemoveShardFiles(stem);
}

// ---------------------------------------------------------------------------
// Drill 1: kill a rank mid-backward; recovered convergence is bitwise
// identical to an uninterrupted run resumed from the same checkpoint.
// ---------------------------------------------------------------------------

TEST(ElasticDrillTest, KillRankMidBackwardRecoversBitwiseIdentical) {
  UseTempArtifactDir();
  const std::string stem = TempStem("kill_drill");
  RemoveShardFiles(stem);
  const int w = 8;
  const int64_t kSteps = 6;
  const std::string victim = ProbeUnitName(1);
  const int64_t recoveries_before = Counter("elastic.recoveries");
  const int64_t lost_before = Counter("elastic.ranks_lost");

  DriverConfig cfg = BaseDrillConfig();
  cfg.total_steps = kSteps;
  cfg.ckpt_interval = 2;
  cfg.ckpt_stem = stem;
  cfg.validate_plan_after_recovery = true;
  cfg.name = "kill_drill";
  // Generation 1 only: rank 3's comm worker dies on the victim unit's
  // gradient ReduceScatter of step 3 — mid-backward, after checkpoints at
  // steps 1 (complete) and 3 (in progress, never completed by rank 3).
  cfg.post_build = [&](comm::DeviceMesh& mesh, int64_t generation) {
    if (generation != 1) return;
    comm::FaultSpec f;
    f.kind = FaultKind::kCrash;
    f.rank = 3;
    f.tag = victim;
    f.step = 3;
    f.op_kind = static_cast<int>(obs::EventKind::kReduceScatter);
    mesh.ShardGroup(0).communicator()->InjectFault(f);
  };

  TrainLoopDriver driver(cfg);
  std::vector<RunResult> results(w);
  RunOnRanks(w, [&](int r) { results[r] = driver.RunRank(r, w); });

  // Exactly the scripted rank died; everyone else recovered and finished.
  ASSERT_TRUE(results[3].died);
  EXPECT_EQ(results[3].final_rank, 3);
  for (int r = 0; r < w; ++r) {
    if (r == 3) continue;
    ASSERT_TRUE(results[r].status.ok())
        << "rank " << r << ": " << results[r].status.ToString();
    EXPECT_FALSE(results[r].died);
    EXPECT_EQ(results[r].recoveries, 1) << "rank " << r;
    EXPECT_EQ(results[r].final_world, w - 1);
    EXPECT_EQ(results[r].last_resume_ckpt_step, 1) << "rank " << r;
    ASSERT_FALSE(results[r].final_state.empty());
  }

  // Reference: an UNINTERRUPTED 7-rank run resumed from the same checkpoint
  // the survivors rolled back to (no saving — don't disturb the set).
  DriverConfig ref = BaseDrillConfig();
  ref.total_steps = kSteps;
  ref.load_stem = stem;
  ref.load_step = results[0].last_resume_ckpt_step;
  TrainLoopDriver ref_driver(ref);
  std::vector<RunResult> ref_results(w - 1);
  RunOnRanks(w - 1,
             [&](int r) { ref_results[r] = ref_driver.RunRank(r, w - 1); });

  // Bitwise-identical convergence: deterministic rank-ordered reductions
  // make the recovered world's remaining steps reproduce the reference
  // exactly — zero tolerance, parameters AND Adam moments.
  ASSERT_TRUE(ref_results[0].status.ok())
      << ref_results[0].status.ToString();
  ASSERT_EQ(results[0].final_state.size(), ref_results[0].final_state.size());
  for (size_t i = 0; i < results[0].final_state.size(); ++i) {
    EXPECT_EQ(results[0].final_state[i].first,
              ref_results[0].final_state[i].first);
    ExpectAllClose(results[0].final_state[i].second,
                   ref_results[0].final_state[i].second, 0, 0);
  }
  ASSERT_EQ(results[0].final_optim.size(), ref_results[0].final_optim.size());
  for (size_t i = 0; i < results[0].final_optim.size(); ++i) {
    EXPECT_EQ(results[0].final_optim[i].fqn, ref_results[0].final_optim[i].fqn);
    EXPECT_EQ(results[0].final_optim[i].step,
              ref_results[0].final_optim[i].step);
    ExpectAllClose(results[0].final_optim[i].exp_avg,
                   ref_results[0].final_optim[i].exp_avg, 0, 0);
    ExpectAllClose(results[0].final_optim[i].exp_avg_sq,
                   ref_results[0].final_optim[i].exp_avg_sq, 0, 0);
  }

  // The recovery artifact is a valid versioned artifact with the story.
  const std::string artifact =
      std::string(::testing::TempDir()) + "/RECOVERY_kill_drill.json";
  ASSERT_TRUE(std::filesystem::exists(artifact));
  auto parsed = obs::ParseJsonFile(artifact);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(obs::ValidateArtifactJson(*parsed).ok());
  const obs::JsonValue& root = *parsed;
  EXPECT_EQ(root["old_world"].AsNumber(), 8);
  EXPECT_EQ(root["new_world"].AsNumber(), 7);
  EXPECT_EQ(root["generation"].AsNumber(), 2);
  const obs::JsonArray& dead = root["dead_ranks"].AsArray();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].AsNumber(), 3);
  EXPECT_EQ(root["ckpt_step"].AsNumber(), 1);
  EXPECT_EQ(root["resume_step"].AsNumber(), 2);
  EXPECT_FALSE(root["flight_dump"].AsString().empty());

  EXPECT_GE(Counter("elastic.recoveries"), recoveries_before + 1);
  EXPECT_GE(Counter("elastic.ranks_lost"), lost_before + 1);
  EXPECT_GE(obs::MetricsRegistry::Get()
                .GetHistogram("elastic.time_to_recover_us")
                .count(),
            1);
  RemoveShardFiles(stem);
}

// ---------------------------------------------------------------------------
// Drill 2: shrink 8 -> 6 after losing TWO ranks on the same collective.
// ---------------------------------------------------------------------------

TEST(ElasticDrillTest, ShrinkAfterDoubleRankLoss) {
  UseTempArtifactDir();
  const std::string stem = TempStem("shrink_drill");
  RemoveShardFiles(stem);
  const int w = 8;
  const std::string victim = ProbeUnitName(1);

  DriverConfig cfg = BaseDrillConfig();
  cfg.total_steps = 4;
  cfg.ckpt_interval = 2;
  cfg.ckpt_stem = stem;
  cfg.name = "shrink_drill";
  // Both workers park on the SAME collective: the watchdog can only name
  // one culprit, but the progress table marks both crashed — the dead-set
  // union is what sizes the 6-world.
  cfg.post_build = [&](comm::DeviceMesh& mesh, int64_t generation) {
    if (generation != 1) return;
    for (int dead : {3, 5}) {
      comm::FaultSpec f;
      f.kind = FaultKind::kCrash;
      f.rank = dead;
      f.tag = victim;
      f.step = 3;
      f.op_kind = static_cast<int>(obs::EventKind::kReduceScatter);
      mesh.ShardGroup(0).communicator()->InjectFault(f);
    }
  };

  TrainLoopDriver driver(cfg);
  std::vector<RunResult> results(w);
  RunOnRanks(w, [&](int r) { results[r] = driver.RunRank(r, w); });

  ASSERT_TRUE(results[3].died);
  ASSERT_TRUE(results[5].died);
  for (int r = 0; r < w; ++r) {
    if (r == 3 || r == 5) continue;
    ASSERT_TRUE(results[r].status.ok())
        << "rank " << r << ": " << results[r].status.ToString();
    EXPECT_EQ(results[r].final_world, 6);
    EXPECT_EQ(results[r].recoveries, 1);
    EXPECT_EQ(results[r].last_resume_ckpt_step, 1);
  }
  // All six survivors agree on the final full state (it is a collective
  // gather — but compare across ranks anyway to pin the contract).
  for (int r = 1; r < w; ++r) {
    if (r == 3 || r == 5) continue;
    ASSERT_EQ(results[r].final_state.size(), results[0].final_state.size());
    for (size_t i = 0; i < results[0].final_state.size(); ++i) {
      ExpectAllClose(results[r].final_state[i].second,
                     results[0].final_state[i].second, 0, 0);
    }
  }
  RemoveShardFiles(stem);
}

// ---------------------------------------------------------------------------
// Drill 3: planned grow 6 -> 8; fresh joiners reshard in.
// ---------------------------------------------------------------------------

TEST(ElasticDrillTest, PlannedGrowReshardsInFreshJoiners) {
  UseTempArtifactDir();
  const std::string stem = TempStem("grow_drill");
  RemoveShardFiles(stem);
  const int w0 = 6;
  const int w1 = 8;
  const int64_t kSteps = 4;

  DriverConfig cfg = BaseDrillConfig();
  cfg.total_steps = kSteps;
  cfg.ckpt_stem = stem;
  cfg.resize = {/*at_step=*/2, /*new_world=*/w1};
  cfg.name = "grow_drill";

  TrainLoopDriver driver(cfg);
  std::vector<RunResult> results(w1);
  std::vector<std::thread> threads;
  for (int r = 0; r < w0; ++r) {
    threads.emplace_back([&, r] { results[r] = driver.RunRank(r, w0); });
  }
  for (int j = w0; j < w1; ++j) {
    threads.emplace_back([&, j] {
      // Fresh capacity: fenced to the post-resize generation.
      results[j] = driver.RunJoiner(/*min_generation=*/2, w1);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<int> joiner_ranks;
  for (int r = 0; r < w1; ++r) {
    ASSERT_TRUE(results[r].status.ok())
        << "rank " << r << ": " << results[r].status.ToString();
    EXPECT_EQ(results[r].final_world, w1);
    if (r < w0) {
      // Survivors keep their ranks.
      EXPECT_EQ(results[r].final_rank, r);
      EXPECT_EQ(results[r].steps_completed, kSteps);
    } else {
      // Joiners take the high ranks in ARRIVAL order — which of the two
      // threads gets 6 vs 7 is scheduling-dependent, so assert the set.
      joiner_ranks.push_back(results[r].final_rank);
      EXPECT_EQ(results[r].steps_completed, kSteps - 2);
    }
  }
  std::sort(joiner_ranks.begin(), joiner_ranks.end());
  EXPECT_EQ(joiner_ranks, (std::vector<int>{w0, w1 - 1}));

  // Reference: an 8-rank run resumed from the same pre-resize checkpoint
  // runs the same post-resize steps — bitwise identical.
  DriverConfig ref = BaseDrillConfig();
  ref.total_steps = kSteps;
  ref.load_stem = stem;
  ref.load_step = 1;
  TrainLoopDriver ref_driver(ref);
  std::vector<RunResult> ref_results(w1);
  RunOnRanks(w1, [&](int r) { ref_results[r] = ref_driver.RunRank(r, w1); });
  ASSERT_TRUE(ref_results[0].status.ok())
      << ref_results[0].status.ToString();
  ASSERT_EQ(results[0].final_state.size(), ref_results[0].final_state.size());
  for (size_t i = 0; i < results[0].final_state.size(); ++i) {
    ExpectAllClose(results[0].final_state[i].second,
                   ref_results[0].final_state[i].second, 0, 0);
  }
  RemoveShardFiles(stem);
}

}  // namespace
}  // namespace fsdp
