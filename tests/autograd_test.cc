// Autograd tests: per-op gradient checks against finite differences, and
// engine semantics FSDP depends on (hooks, accumulation, view gradients,
// multiple forwards, unused parameters, final callbacks).
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::CheckGradients;
using fsdp::testing::ExpectAllClose;

Tensor Leaf(Shape shape, Rng& rng) {
  Tensor t = Tensor::Randn(std::move(shape), rng);
  t.set_requires_grad(true);
  return t;
}

TEST(AutogradOps, AddSubMulGradients) {
  Rng rng(1, 0);
  Tensor a = Leaf({3, 4}, rng), b = Leaf({3, 4}, rng);
  CheckGradients([&] { return ops::Sum(ops::Add(a, b)); }, {a, b});
  CheckGradients([&] { return ops::Sum(ops::Sub(a, b)); }, {a, b});
  CheckGradients([&] { return ops::Sum(ops::Mul(a, b)); }, {a, b});
  CheckGradients([&] { return ops::Sum(ops::ScalarMul(a, -2.5f)); }, {a});
}

TEST(AutogradOps, SquareUsesSameTensorTwice) {
  // x*x: the engine must route two contributions to x.
  Rng rng(2, 0);
  Tensor x = Leaf({5}, rng);
  CheckGradients([&] { return ops::Sum(ops::Mul(x, x)); }, {x});
  Tensor loss = ops::Sum(ops::Mul(x, x));
  x.zero_grad();
  autograd::RunBackward(loss);
  Tensor expect = x.Clone();
  expect.Mul_(2.f);
  ExpectAllClose(x.grad(), expect, 1e-4f, 1e-5f);
}

TEST(AutogradOps, MatMulAndLinearGradients) {
  Rng rng(3, 0);
  Tensor a = Leaf({4, 3}, rng), b = Leaf({3, 5}, rng);
  CheckGradients([&] { return ops::Sum(ops::MatMul(a, b)); }, {a, b});

  Tensor x = Leaf({6, 3}, rng), w = Leaf({4, 3}, rng), bias = Leaf({4}, rng);
  CheckGradients([&] { return ops::Sum(ops::Linear(x, w, bias)); },
                 {x, w, bias});
  // Bias-free variant.
  CheckGradients([&] { return ops::Sum(ops::Linear(x, w, Tensor())); },
                 {x, w});
}

TEST(AutogradOps, ActivationGradients) {
  Rng rng(4, 0);
  Tensor x = Leaf({17}, rng);
  CheckGradients([&] { return ops::Sum(ops::Gelu(x)); }, {x});
  CheckGradients([&] { return ops::Sum(ops::Sigmoid(x)); }, {x});
  CheckGradients([&] { return ops::Sum(ops::Tanh(x)); }, {x});
  // ReLU away from the kink.
  Tensor y = Tensor::FromVector({-2, -1, 0.5, 1, 3}, {5});
  y.set_requires_grad(true);
  CheckGradients([&] { return ops::Sum(ops::Relu(y)); }, {y});
}

TEST(AutogradOps, SoftmaxAndLayerNormGradients) {
  Rng rng(5, 0);
  Tensor x = Leaf({3, 6}, rng);
  Tensor weights = Tensor::Randn({3, 6}, rng);  // project to non-trivial loss
  CheckGradients(
      [&] { return ops::Sum(ops::Mul(ops::Softmax(x), weights)); }, {x});

  Tensor g = Leaf({6}, rng), b = Leaf({6}, rng);
  CheckGradients(
      [&] {
        return ops::Sum(ops::Mul(ops::LayerNorm(x, g, b), weights));
      },
      {x, g, b}, 1e-2f, 8e-2f, 2e-3f);
}

TEST(AutogradOps, TransposeSliceConcatGradients) {
  Rng rng(6, 0);
  Tensor x = Leaf({4, 6}, rng);
  Tensor weights = Tensor::Randn({6, 4}, rng);
  CheckGradients(
      [&] { return ops::Sum(ops::Mul(ops::Transpose(x), weights)); }, {x});

  Tensor w2 = Tensor::Randn({4, 2}, rng);
  CheckGradients(
      [&] { return ops::Sum(ops::Mul(ops::SliceCols(x, 1, 3), w2)); }, {x});

  Tensor w3 = Tensor::Randn({2, 6}, rng);
  CheckGradients(
      [&] { return ops::Sum(ops::Mul(ops::SliceRows(x, 1, 3), w3)); }, {x});

  Tensor y = Leaf({4, 3}, rng);
  CheckGradients(
      [&] {
        Tensor cat = ops::ConcatCols({x, y});
        return ops::Sum(ops::Mul(cat, cat));
      },
      {x, y});
  Tensor z = Leaf({2, 6}, rng);
  CheckGradients(
      [&] {
        Tensor cat = ops::ConcatRows({x, z});
        return ops::Sum(ops::Mul(cat, cat));
      },
      {x, z});
}

TEST(AutogradOps, EmbeddingAndCrossEntropyGradients) {
  Rng rng(7, 0);
  Tensor table = Leaf({5, 3}, rng);
  Tensor idx = ops::IndexTensor({1, 4, 1}, {3});
  CheckGradients([&] { return ops::Sum(ops::Embedding(table, idx)); },
                 {table});

  Tensor logits = Leaf({4, 6}, rng);
  Tensor targets = ops::IndexTensor({0, 5, 2, 2}, {4});
  CheckGradients([&] { return ops::CrossEntropy(logits, targets); },
                 {logits});
}

TEST(AutogradOps, MseAndMeanGradients) {
  Rng rng(8, 0);
  Tensor pred = Leaf({7}, rng);
  Tensor target = Tensor::Randn({7}, rng);
  CheckGradients([&] { return ops::MseLoss(pred, target); }, {pred});
  CheckGradients([&] { return ops::Mean(ops::Mul(pred, pred)); }, {pred});
}

TEST(AutogradOps, CastPassesGradThrough) {
  Rng rng(9, 0);
  Tensor x = Leaf({8}, rng);
  Tensor loss = ops::Sum(ops::Cast(x, DType::kBF16));
  autograd::RunBackward(loss);
  ExpectAllClose(x.grad(), Tensor::Ones({8}), 0, 0);
}

// ----- FlatParameter view mechanics (the core of Sec 3.2.3) -----

TEST(AutogradEngine, SliceViewGradsLandAtOffsets) {
  // A flat leaf with two views used in a computation: the flat gradient must
  // contain each view's gradient at its offset and zeros elsewhere (padding).
  Tensor flat = Tensor::FromVector({1, 2, 3, 4, 5, 6, 7, 0}, {8});
  flat.set_requires_grad(true);
  Tensor w = ops::SliceView(flat, 0, {2, 2});   // elems 0..3
  Tensor b = ops::SliceView(flat, 4, {3});      // elems 4..6; elem 7 = pad
  Tensor x = Tensor::FromVector({1, 1}, {1, 2});
  Tensor y = ops::MatMul(x, w);                  // (1,2)
  Tensor loss = ops::Add(ops::Sum(y), ops::Sum(b));
  autograd::RunBackward(loss);

  Tensor g = flat.grad();
  ASSERT_TRUE(g.defined());
  // dW = x^T @ dy = all ones; db = ones; pad = 0.
  ExpectAllClose(g, Tensor::FromVector({1, 1, 1, 1, 1, 1, 1, 0}, {8}), 0, 0);
}

TEST(AutogradEngine, UnusedViewContributesZeros) {
  Tensor flat = Tensor::Ones({6});
  flat.set_requires_grad(true);
  Tensor used = ops::SliceView(flat, 0, {3});
  Tensor unused = ops::SliceView(flat, 3, {3});
  (void)unused;
  autograd::RunBackward(ops::Sum(used));
  Tensor g = flat.grad();
  ExpectAllClose(g, Tensor::FromVector({1, 1, 1, 0, 0, 0}, {6}), 0, 0);
}

TEST(AutogradEngine, LeafGradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::Ones({3});
  x.set_requires_grad(true);
  autograd::RunBackward(ops::Sum(x));
  autograd::RunBackward(ops::Sum(ops::ScalarMul(x, 2.f)));
  ExpectAllClose(x.grad(), Tensor::Full({3}, 3.f), 0, 0);
}

TEST(AutogradEngine, TensorHookFiresBeforePropagation) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  Tensor mid = ops::ScalarMul(x, 3.f);
  std::vector<int> order;
  mid.register_hook([&](const Tensor& g) {
    order.push_back(1);
    EXPECT_FLOAT_EQ(g.data()[0], 1.f);  // grad of Sum output
    return Tensor();
  });
  x.register_hook([&](const Tensor&) {
    order.push_back(2);
    return Tensor();
  });
  autograd::RunBackward(ops::Sum(mid));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // intermediate hook before leaf hook
  EXPECT_EQ(order[1], 2);
}

TEST(AutogradEngine, HookCanReplaceGradient) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  Tensor mid = ops::ScalarMul(x, 1.f);
  mid.register_hook([](const Tensor& g) {
    Tensor scaled = g.Clone();
    scaled.Mul_(10.f);
    return scaled;
  });
  autograd::RunBackward(ops::Sum(mid));
  ExpectAllClose(x.grad(), Tensor::Full({2}, 10.f), 0, 0);
}

TEST(AutogradEngine, PostAccumulateHookFiresOncePerBackward) {
  Tensor x = Tensor::Ones({4});
  x.set_requires_grad(true);
  int fired = 0;
  x.register_post_accumulate_grad_hook([&] { ++fired; });
  // Two consumers of x in one graph: hook still fires once.
  Tensor loss = ops::Add(ops::Sum(x), ops::Sum(ops::Mul(x, x)));
  autograd::RunBackward(loss);
  EXPECT_EQ(fired, 1);
  autograd::RunBackward(ops::Sum(x));
  EXPECT_EQ(fired, 2);
}

TEST(AutogradEngine, PostAccumulateHookSeesFinalizedGrad) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  float seen = 0;
  x.register_post_accumulate_grad_hook([&] { seen = x.grad().data()[0]; });
  autograd::RunBackward(ops::Sum(ops::ScalarMul(x, 7.f)));
  EXPECT_FLOAT_EQ(seen, 7.f);
}

TEST(AutogradEngine, QueueCallbackRunsAtEndOfBackward) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  std::vector<int> order;
  x.register_post_accumulate_grad_hook([&] {
    order.push_back(1);
    autograd::QueueCallback([&] { order.push_back(3); });
    order.push_back(2);
  });
  autograd::RunBackward(ops::Sum(x));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 3);  // callback after all hooks
  EXPECT_FALSE(autograd::InBackward());
}

TEST(AutogradEngine, QueueCallbackOutsideBackwardDies) {
  EXPECT_DEATH(autograd::QueueCallback([] {}), "outside");
}

TEST(AutogradEngine, MultipleForwardsBeforeBackward) {
  // Two independent graphs over the same leaf; backwards run separately and
  // accumulate — the FSDP "multiple forwards before backward" case.
  Tensor w = Tensor::Ones({2});
  w.set_requires_grad(true);
  Tensor l1 = ops::Sum(ops::ScalarMul(w, 2.f));
  Tensor l2 = ops::Sum(ops::ScalarMul(w, 5.f));
  autograd::RunBackward(l1);
  autograd::RunBackward(l2);
  ExpectAllClose(w.grad(), Tensor::Full({2}, 7.f), 0, 0);
}

TEST(AutogradEngine, UnusedLeafGetsNoGrad) {
  Tensor used = Tensor::Ones({2});
  Tensor unused = Tensor::Ones({2});
  used.set_requires_grad(true);
  unused.set_requires_grad(true);
  autograd::RunBackward(ops::Sum(used));
  EXPECT_TRUE(used.grad().defined());
  EXPECT_FALSE(unused.grad().defined());
}

TEST(AutogradEngine, NoGradGuardSuppressesGraph) {
  Tensor x = Tensor::Ones({2});
  x.set_requires_grad(true);
  NoGradGuard guard;
  Tensor y = ops::ScalarMul(x, 2.f);
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(AutogradEngine, DiamondGraphAccumulatesCorrectly) {
  // x -> (a = 2x, b = 3x) -> loss = sum(a*b) ; dloss/dx = 12x.
  Rng rng(10, 0);
  Tensor x = Leaf({4}, rng);
  Tensor a = ops::ScalarMul(x, 2.f);
  Tensor b = ops::ScalarMul(x, 3.f);
  autograd::RunBackward(ops::Sum(ops::Mul(a, b)));
  Tensor expect = x.Clone();
  expect.Mul_(12.f);
  ExpectAllClose(x.grad(), expect, 1e-5f, 1e-6f);
}

TEST(AutogradEngine, NonScalarRootNeedsGradOutput) {
  Tensor x = Tensor::Ones({3});
  x.set_requires_grad(true);
  Tensor y = ops::ScalarMul(x, 2.f);
  Tensor seed = Tensor::FromVector({1, 2, 3}, {3});
  autograd::RunBackward(y, seed);
  ExpectAllClose(x.grad(), Tensor::FromVector({2, 4, 6}, {3}), 0, 0);
}

}  // namespace
}  // namespace fsdp
