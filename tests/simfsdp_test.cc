// Schedule-simulator tests: the qualitative claims of the paper's evaluation
// must hold as *relationships* in the simulation (who wins, what direction a
// knob moves, where memory goes), independent of the calibration constants.
#include <gtest/gtest.h>

#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"

namespace fsdp::simfsdp {
namespace {

sim::SimConstants Constants() { return sim::SimConstants{}; }

TEST(WorkloadTest, ParameterCountsMatchPaperModels) {
  EXPECT_NEAR(T5_611M().total_params() / 1e6, 611, 120);
  EXPECT_NEAR(T5_2_28B().total_params() / 1e9, 2.28, 0.4);
  EXPECT_NEAR(T5_11B().total_params() / 1e9, 11, 1.5);
  EXPECT_NEAR(GPT_175B().total_params() / 1e9, 175, 10);
  EXPECT_NEAR(DHEN(8).total_params() / 1e6, 550, 10);
  EXPECT_NEAR(RegNet_9B().total_params() / 1e9, 9, 0.5);
  EXPECT_NEAR(DeepViT_8B().total_params() / 1e9, 8, 1.5);
}

TEST(WorkloadTest, FlopCountsScaleWithModel) {
  // 2*params*tokens lower bound for transformer forward.
  Workload w = GPT_175B();
  const double fwd = w.fwd_flops_per_sample();
  EXPECT_GT(fwd, 2.0 * w.total_params() * w.tokens_per_sample * 0.9);
  EXPECT_LT(fwd, 2.0 * w.total_params() * w.tokens_per_sample * 1.6);
}

TEST(DdpSimTest, SmallModelsFitLargeModelsOom) {
  // Fig 6(a): DDP handles 611M, OOMs beyond ~2.28B on 80GB.
  sim::Topology topo{1, 8};
  DdpSimConfig cfg;
  cfg.batch_per_gpu = 8;
  EXPECT_FALSE(DdpSimulator(T5_611M(), topo, Constants(), cfg).Run().oom);
  EXPECT_TRUE(DdpSimulator(T5_11B(), topo, Constants(), cfg).Run().oom);
}

TEST(FsdpSimTest, AccommodatesModelsDdpCannot) {
  sim::Topology topo{1, 8};
  FsdpSimConfig cfg;
  cfg.batch_per_gpu = 8;
  auto m = FsdpSimulator(T5_11B(), topo, Constants(), cfg).Run();
  EXPECT_FALSE(m.oom);
  EXPECT_GT(m.tflops_per_gpu, 50);
}

TEST(FsdpSimTest, Bf16RoughlyDoublesThroughput) {
  sim::Topology topo{1, 8};
  FsdpSimConfig fp32;
  fp32.batch_per_gpu = 8;
  fp32.param_dtype = DType::kF32;
  fp32.reduce_dtype = DType::kF32;
  FsdpSimConfig bf16 = fp32;
  bf16.param_dtype = DType::kBF16;
  bf16.reduce_dtype = DType::kBF16;
  auto m32 = FsdpSimulator(T5_611M(), topo, Constants(), fp32).Run();
  auto m16 = FsdpSimulator(T5_611M(), topo, Constants(), bf16).Run();
  EXPECT_GT(m16.tflops_per_gpu, 1.7 * m32.tflops_per_gpu);
}

TEST(FsdpSimTest, ShardedMemoryShrinksWithWorldSize) {
  // Fig 8: peak memory decreases as GPUs are added (smaller shards).
  FsdpSimConfig cfg;
  cfg.batch_per_gpu = 8;
  auto at = [&](int gpus) {
    sim::Topology topo{gpus / 8, 8};
    return FsdpSimulator(T5_11B(), topo, Constants(), cfg).Run();
  };
  auto m8 = at(8), m64 = at(64), m512 = at(512);
  EXPECT_GT(m8.peak_allocated, m64.peak_allocated);
  EXPECT_GT(m64.peak_allocated, m512.peak_allocated);
  // allocated <= active <= reserved everywhere.
  for (auto* m : {&m8, &m64, &m512}) {
    EXPECT_LE(m->peak_allocated, m->peak_active);
    EXPECT_LE(m->peak_active, m->peak_reserved);
  }
}

TEST(FsdpSimTest, BackwardPrefetchImprovesThroughput) {
  // Fig 6(b): ~18% gain on GPT-175B; direction and rough size must hold at
  // every cluster scale.
  for (int hosts : {16, 32, 64}) {
    sim::Topology topo{hosts, 8};
    FsdpSimConfig on;
    on.batch_per_gpu = 2;
    FsdpSimConfig off = on;
    off.backward_prefetch = false;
    auto m_on = FsdpSimulator(GPT_175B(), topo, Constants(), on).Run();
    auto m_off = FsdpSimulator(GPT_175B(), topo, Constants(), off).Run();
    EXPECT_GT(m_on.tflops_per_gpu, 1.05 * m_off.tflops_per_gpu)
        << hosts << " hosts";
    EXPECT_LT(m_on.tflops_per_gpu, 1.6 * m_off.tflops_per_gpu);
  }
}

TEST(FsdpSimTest, RateLimiterRescuesMemoryPressuredWorkload) {
  // Fig 6(c), T5 column: FP32 + no checkpointing + max batch -> the fast CPU
  // thread over-allocates, defragmentation storms, and the limiter wins big.
  sim::Topology topo{2, 8};
  FsdpSimConfig off;
  off.batch_per_gpu = 2;
  off.param_dtype = DType::kF32;
  off.reduce_dtype = DType::kF32;
  off.activation_checkpointing = false;
  off.limit_all_gathers = 0;
  FsdpSimConfig on = off;
  on.limit_all_gathers = 2;
  auto m_off = FsdpSimulator(T5_11B(), topo, Constants(), off).Run();
  auto m_on = FsdpSimulator(T5_11B(), topo, Constants(), on).Run();
  EXPECT_GT(m_off.num_alloc_retries, 0);
  EXPECT_EQ(m_on.num_alloc_retries, 0);
  EXPECT_GT(m_off.iter_time_us, 1.5 * m_on.iter_time_us);
  // And the limiter caps the producer-stream over-allocation.
  EXPECT_LT(m_on.peak_active, m_off.peak_active);
}

TEST(FsdpSimTest, RateLimiterNeutralWithoutPressure) {
  // Fig 6(c), RegNet column: busy CPU thread, no over-allocation -> the
  // limiter must not change anything meaningfully.
  sim::Topology topo{2, 8};
  FsdpSimConfig off;
  off.batch_per_gpu = 48;
  off.param_dtype = DType::kF32;
  off.reduce_dtype = DType::kF32;
  off.activation_checkpointing = false;
  off.limit_all_gathers = 0;
  FsdpSimConfig on = off;
  on.limit_all_gathers = 2;
  auto m_off = FsdpSimulator(RegNet_9B(), topo, Constants(), off).Run();
  auto m_on = FsdpSimulator(RegNet_9B(), topo, Constants(), on).Run();
  EXPECT_EQ(m_off.num_alloc_retries, 0);
  EXPECT_NEAR(m_on.iter_time_us / m_off.iter_time_us, 1.0, 0.02);
}

TEST(FsdpSimTest, NoReshardAfterForwardSkipsBackwardAllGathers) {
  // RAF vs NRAF (Sec 5.4): NRAF trades memory for less communication.
  sim::Topology topo{2, 8};
  FsdpSimConfig raf;
  raf.batch_per_gpu = 4;
  FsdpSimConfig nraf = raf;
  nraf.reshard_after_forward = false;
  auto m_raf = FsdpSimulator(T5_11B(), topo, Constants(), raf).Run();
  auto m_nraf = FsdpSimulator(T5_11B(), topo, Constants(), nraf).Run();
  EXPECT_GT(m_raf.cross_host_bytes_per_gpu,
            1.3 * m_nraf.cross_host_bytes_per_gpu);
  EXPECT_LT(m_raf.peak_allocated, m_nraf.peak_allocated);
  EXPECT_LE(m_nraf.iter_time_us, m_raf.iter_time_us * 1.02);
}

TEST(FsdpSimTest, HybridShardingCutsCrossHostTraffic) {
  // Sec 3.2.2: intra-host shard groups keep AllGather/ReduceScatter off the
  // fabric; only the replica AllReduce crosses hosts.
  sim::Topology topo{8, 8};
  FsdpSimConfig full;
  full.batch_per_gpu = 4;
  FsdpSimConfig hybrid = full;
  hybrid.sharding_factor = 8;
  auto m_full = FsdpSimulator(T5_11B(), topo, Constants(), full).Run();
  auto m_hybrid = FsdpSimulator(T5_11B(), topo, Constants(), hybrid).Run();
  EXPECT_LT(m_hybrid.cross_host_bytes_per_gpu,
            0.5 * m_full.cross_host_bytes_per_gpu);
  // Memory-throughput trade-off: hybrid holds a host-sized shard.
  EXPECT_GT(m_hybrid.peak_allocated, m_full.peak_allocated);
}

TEST(FsdpSimTest, SimulatedTrafficMatchesAnalyticFormulas) {
  // The byte counters must agree with the paper's closed forms (Sec 3.2.2)
  // up to the (W-1)/W vs exact-group-size bookkeeping.
  sim::Topology topo{8, 8};
  const double model_bytes = T5_11B().total_params() * 2.0;  // bf16 wire
  FsdpSimConfig full;
  full.batch_per_gpu = 1;
  auto m_full = FsdpSimulator(T5_11B(), topo, Constants(), full).Run();
  const double analytic_full =
      AnalyticCrossHostTraffic(model_bytes, topo, 64, false);
  EXPECT_NEAR(m_full.cross_host_bytes_per_gpu / analytic_full, 1.0, 0.1);

  FsdpSimConfig hybrid = full;
  hybrid.sharding_factor = 8;
  auto m_hybrid = FsdpSimulator(T5_11B(), topo, Constants(), hybrid).Run();
  const double analytic_hybrid =
      AnalyticCrossHostTraffic(model_bytes, topo, 8, false);
  EXPECT_NEAR(m_hybrid.cross_host_bytes_per_gpu / analytic_hybrid, 1.0, 0.1);

  // Analytic ordering: hybrid << replication < full sharding.
  const double repl = AnalyticCrossHostTraffic(model_bytes, topo, 1, true);
  EXPECT_LT(analytic_hybrid, repl);
  EXPECT_LT(repl, analytic_full);
  EXPECT_NEAR(analytic_full / repl, 1.5, 0.01);  // 3M/2M ratio
}

TEST(FsdpSimTest, GradAccumulationWithoutCommSavesTrafficCostsMemory) {
  // Sec 3.3.4: no_sync accumulation trades memory for communication.
  sim::Topology topo{2, 8};
  FsdpSimConfig with;
  with.batch_per_gpu = 2;
  with.microbatches = 4;
  with.accum = plan::AccumMode::kReduceEveryMicrobatch;
  FsdpSimConfig without = with;
  without.accum = plan::AccumMode::kReduceLastMicrobatch;
  auto m_with = FsdpSimulator(T5_11B(), topo, Constants(), with).Run();
  auto m_without = FsdpSimulator(T5_11B(), topo, Constants(), without).Run();
  // Parameters are still re-gathered per microbatch (RAF); the saving is the
  // skipped per-microbatch gradient ReduceScatters: 12 collective volumes
  // drop to 9 for 4 microbatches.
  EXPECT_LT(m_without.cross_host_bytes_per_gpu,
            0.85 * m_with.cross_host_bytes_per_gpu);
  EXPECT_GT(m_without.peak_allocated, m_with.peak_allocated);
  EXPECT_LT(m_without.iter_time_us, m_with.iter_time_us * 1.01);
}

TEST(FsdpSimTest, FinerWrappingLowersPeakMemory) {
  // Sec 3.2.1: O(sum/F + max psi) — more units => smaller max unit => lower
  // peak parameter memory, at the price of more collectives. Emulated by
  // comparing the 54-block T5 against a 6-unit variant of the same model.
  Workload fine = T5_11B();
  Workload coarse = fine;
  coarse.units.clear();
  for (int i = 0; i < 6; ++i) {
    UnitSpec u = fine.units[0];
    u.param_numel *= 9;
    u.fwd_flops_per_sample *= 9;
    u.act_bytes_per_sample *= 9;
    u.ckpt_bytes_per_sample *= 9;
    coarse.units.push_back(u);
  }
  sim::Topology topo{2, 8};
  FsdpSimConfig cfg;
  cfg.batch_per_gpu = 2;
  auto m_fine = FsdpSimulator(fine, topo, Constants(), cfg).Run();
  auto m_coarse = FsdpSimulator(coarse, topo, Constants(), cfg).Run();
  EXPECT_LT(m_fine.peak_allocated, m_coarse.peak_allocated);
}

TEST(FsdpSimTest, DhenScalesAndHybridNrafIsFastest) {
  // Fig 7(a)/8(a): Full-Shard RAF = lowest memory & QPS; Hybrid NRAF the
  // opposite.
  sim::Topology topo{16, 8};
  const int gpus = topo.world();
  auto run = [&](int factor, bool raf) {
    FsdpSimConfig cfg;
    cfg.batch_per_gpu = 1024;
    cfg.sharding_factor = factor;
    cfg.reshard_after_forward = raf;
    cfg.activation_checkpointing = false;
    return FsdpSimulator(DHEN(gpus), topo, Constants(), cfg).Run();
  };
  auto full_raf = run(0, true);
  auto full_nraf = run(0, false);
  auto hybrid_raf = run(8, true);
  auto hybrid_nraf = run(8, false);
  EXPECT_FALSE(full_raf.oom);
  EXPECT_LE(full_raf.peak_allocated, full_nraf.peak_allocated);
  EXPECT_LE(full_nraf.peak_allocated, hybrid_nraf.peak_allocated);
  EXPECT_GE(hybrid_nraf.qps_per_gpu, full_raf.qps_per_gpu);
  EXPECT_GE(hybrid_nraf.qps_per_gpu, hybrid_raf.qps_per_gpu * 0.99);
}

TEST(FsdpSimTest, CpuOffloadTradesLatencyForMemory) {
  sim::Topology topo{1, 8};
  FsdpSimConfig on;
  on.batch_per_gpu = 8;
  on.cpu_offload_params = true;
  FsdpSimConfig off = on;
  off.cpu_offload_params = false;
  auto m_on = FsdpSimulator(T5_11B(), topo, Constants(), on).Run();
  auto m_off = FsdpSimulator(T5_11B(), topo, Constants(), off).Run();
  ASSERT_FALSE(m_on.oom);
  ASSERT_FALSE(m_off.oom);
  // Shards + optimizer state leave the device...
  EXPECT_LT(m_on.peak_allocated, m_off.peak_allocated - (10LL << 30));
  // ...but iterations slow down (PCIe copies + host optimizer).
  EXPECT_GT(m_on.iter_time_us, 1.05 * m_off.iter_time_us);
}

TEST(FsdpSimTest, CpuOffloadRescuesOom) {
  // FP32 + no checkpointing on 8 GPUs OOMs device-resident (Fig 6a's
  // boundary) but fits with offloaded shards.
  sim::Topology topo{1, 8};
  FsdpSimConfig cfg;
  cfg.batch_per_gpu = 8;
  cfg.param_dtype = DType::kF32;
  cfg.reduce_dtype = DType::kF32;
  auto dev = FsdpSimulator(T5_2_28B(), topo, Constants(), cfg).Run();
  cfg.cpu_offload_params = true;
  auto host = FsdpSimulator(T5_2_28B(), topo, Constants(), cfg).Run();
  EXPECT_FALSE(host.oom);
  EXPECT_LT(host.peak_allocated, dev.peak_allocated);
}

TEST(FsdpSimTest, WarmupIterationsConverge) {
  // Steady-state metrics must not depend on adding more warmup iterations.
  sim::Topology topo{2, 8};
  FsdpSimConfig a;
  a.batch_per_gpu = 4;
  a.iterations = 3;
  FsdpSimConfig b = a;
  b.iterations = 6;
  auto ma = FsdpSimulator(T5_11B(), topo, Constants(), a).Run();
  auto mb = FsdpSimulator(T5_11B(), topo, Constants(), b).Run();
  EXPECT_NEAR(ma.iter_time_us / mb.iter_time_us, 1.0, 0.02);
}

TEST(FsdpSimTest, TfopsBoundedByHardwarePeak) {
  for (int gpus : {8, 64, 512}) {
    sim::Topology topo{gpus / 8, 8};
    FsdpSimConfig cfg;
    cfg.batch_per_gpu = 8;
    auto m = FsdpSimulator(T5_11B(), topo, Constants(), cfg).Run();
    EXPECT_GT(m.tflops_per_gpu, 0);
    EXPECT_LT(m.tflops_per_gpu, Constants().peak_bf16_tflops);
  }
}

}  // namespace
}  // namespace fsdp::simfsdp
