// Additional coverage: numeric grad-checks of the composite modules
// (attention, transformer block, TP layers), mixed-precision configuration
// corners, DDP bucket boundaries, hook management, and dtype interactions.
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/tensor_parallel.h"
#include "nn/transformer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::CheckGradients;

TEST(ModuleGradCheck, MultiheadSelfAttention) {
  nn::InitCtx ctx(Device::kCpu, 3);
  nn::MultiheadSelfAttention attn(4, 2, /*causal=*/true, ctx);
  Rng rng(7, 0);
  Tensor x = Tensor::Randn({1, 3, 4}, rng, 0.f, 0.5f);
  Tensor weights = Tensor::Randn({1, 3, 4}, rng);
  std::vector<Tensor> params;
  for (Tensor* slot : attn.ParameterSlots()) params.push_back(*slot);
  CheckGradients(
      [&] {
        Tensor y = attn(x);
        Tensor prod = ops::Mul(ops::Reshape(y, {12}),
                               ops::Reshape(weights, {12}));
        return ops::Sum(prod);
      },
      params, 1e-2f, 8e-2f, 3e-3f);
}

TEST(ModuleGradCheck, TransformerBlock) {
  nn::InitCtx ctx(Device::kCpu, 4);
  nn::TransformerBlock block(4, 2, 8, /*causal=*/false, ctx);
  Rng rng(8, 0);
  Tensor x = Tensor::Randn({1, 2, 4}, rng, 0.f, 0.5f);
  Tensor weights = Tensor::Randn({1, 2, 4}, rng);
  // Probe a subset of parameters (the block has 10).
  std::vector<Tensor> params;
  for (auto& [name, slot] : block.NamedParameters()) {
    if (name.find("weight") != std::string::npos) params.push_back(*slot);
  }
  CheckGradients(
      [&] {
        Tensor y = block(x);
        return ops::Sum(
            ops::Mul(ops::Reshape(y, {8}), ops::Reshape(weights, {8})));
      },
      params, 1e-2f, 1e-1f, 4e-3f);
}

TEST(ModuleGradCheck, RowParallelBiasGradient) {
  // BroadcastRows backward (column sum) through the single-rank TP path.
  auto comm = std::make_shared<comm::Communicator>(1);
  nn::InitCtx ctx(Device::kCpu, 5);
  nn::RowParallelLinear row(4, 3, comm::ProcessGroup(comm, 0), ctx);
  Rng rng(9, 0);
  Tensor x = Tensor::Randn({5, 4}, rng);
  std::vector<Tensor> params;
  for (Tensor* slot : row.ParameterSlots()) params.push_back(*slot);
  CheckGradients(
      [&] {
        Tensor y = row(x);
        return ops::Sum(ops::Mul(y, y));
      },
      params, 1e-3f, 5e-2f, 1e-3f);
}

TEST(MixedPrecisionConfig, ReduceDtypeOnly) {
  // Low-precision reduction with full-precision parameters: the collectives
  // quantize, the compute does not.
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 6);
    auto mlp = std::make_shared<nn::MLP>(8, 16, ctx);
    core::FsdpOptions opts;
    opts.mixed_precision.reduce_dtype = DType::kBF16;  // param stays FP32
    auto state = core::FullyShard(mlp, mesh, r, opts);
    state->unit_handle(0).Unshard();
    ASSERT_EQ(state->unit_handle(0).unsharded_param().dtype(), DType::kF32);
    state->unit_handle(0).Reshard();
    Rng rng(r + 1, 0);
    Tensor y = (*mlp)(Tensor::Randn({2, 8}, rng));
    autograd::RunBackward(ops::Sum(y));
    ASSERT_TRUE(state->unit_handle(0).sharded_param().grad().defined());
  });
}

TEST(MixedPrecisionConfig, ParamDtypeOnlyKeepsFp32Reduction) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 7);
    auto mlp = std::make_shared<nn::MLP>(8, 16, ctx);
    core::FsdpOptions opts;
    opts.mixed_precision.param_dtype = DType::kBF16;
    auto state = core::FullyShard(mlp, mesh, r, opts);
    ASSERT_TRUE(opts.mixed_precision.enabled());
    Rng rng(r + 1, 0);
    Tensor y = (*mlp)(Tensor::Randn({2, 8}, rng));
    autograd::RunBackward(ops::Sum(y));
    // Training proceeds with finite grads.
    ASSERT_FALSE(
        state->unit_handle(0).sharded_param().grad().HasNonFinite());
  });
}

TEST(DdpBuckets, ParamLargerThanCapGetsOwnBucket) {
  auto comm = std::make_shared<comm::Communicator>(1);
  nn::InitCtx ctx(Device::kCpu, 8);
  auto seq = std::make_shared<nn::Sequential>();
  seq->Append(std::make_shared<nn::Linear>(4, 100, false, ctx));  // 400 elems
  seq->Append(std::make_shared<nn::Linear>(100, 4, false, ctx));  // 400 elems
  ddp::DistributedDataParallel ddp(seq, comm::ProcessGroup(comm, 0),
                                   {.bucket_cap_numel = 16});
  // Each oversized parameter becomes its own bucket.
  EXPECT_EQ(ddp.num_buckets(), 2);
  Rng rng(1, 0);
  Tensor y = ddp.Forward(Tensor::Randn({2, 4}, rng));
  autograd::RunBackward(ops::Sum(y));
  for (auto& [name, slot] : seq->NamedParameters()) {
    ASSERT_TRUE(slot->grad().defined()) << name;
  }
}

TEST(HookManagement, ClearHooksDropsBothKinds) {
  Tensor t = Tensor::Ones({2});
  t.set_requires_grad(true);
  int fired = 0;
  t.register_hook([&](const Tensor&) {
    ++fired;
    return Tensor();
  });
  t.register_post_accumulate_grad_hook([&] { ++fired; });
  t.clear_hooks();
  autograd::RunBackward(ops::Sum(t));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(t.grad().defined());
}

TEST(DtypeInteraction, IndexTensorsNeverQuantize) {
  Tensor idx = ops::IndexTensor({1000000, 3}, {2});
  Tensor cast = idx.CastTo(DType::kI64);
  EXPECT_EQ(ops::IndexValues(cast)[0], 1000000);
  // Quantize() is the identity for kI64.
  EXPECT_EQ(Quantize(123456.f, DType::kI64), 123456.f);
}

TEST(DtypeInteraction, NbytesFollowsTag) {
  Tensor t = Tensor::Zeros({100}, DType::kBF16);
  EXPECT_EQ(t.nbytes(), 200);
  EXPECT_EQ(t.CastTo(DType::kF32).nbytes(), 400);
}

TEST(EngineEdge, BackwardThroughConcatAndSlicesMix) {
  // A graph mixing row/col slices, concats, and views over one flat leaf —
  // the worst-case plumbing FSDP generates.
  Tensor flat = Tensor::Ones({24});
  flat.set_requires_grad(true);
  Tensor a = ops::SliceView(flat, 0, {2, 6});
  Tensor b = ops::SliceView(flat, 12, {2, 6});
  Tensor left = ops::SliceCols(a, 0, 3);
  Tensor right = ops::SliceCols(b, 3, 6);
  Tensor cat = ops::ConcatCols({left, right});          // (2 x 6)
  Tensor stack = ops::ConcatRows({cat, ops::Transpose(ops::Transpose(cat))});
  autograd::RunBackward(ops::Sum(stack));
  Tensor g = flat.grad();
  ASSERT_TRUE(g.defined());
  // Elements 0..2 and 6..8 (a's left cols) get grad 2 (used twice via the
  // row-stack); 15..17 and 21..23 likewise; the rest zero.
  for (int64_t i : {0, 1, 2, 6, 7, 8, 15, 16, 17, 21, 22, 23}) {
    EXPECT_FLOAT_EQ(g.data()[i], 2.f) << i;
  }
  for (int64_t i : {3, 4, 5, 9, 10, 11, 12, 13, 14, 18, 19, 20}) {
    EXPECT_FLOAT_EQ(g.data()[i], 0.f) << i;
  }
}

TEST(WorldSizeOne, FsdpDegeneratesGracefully) {
  comm::DeviceMesh mesh(1, 1);
  nn::InitCtx ctx(Device::kCpu, 9);
  auto mlp = std::make_shared<nn::MLP>(6, 12, ctx);
  auto state = core::FullyShard(mlp, mesh, 0, {});
  ASSERT_EQ(state->unit_handle(0).shard_numel(),
            state->unit_handle(0).padded_numel());
  Rng rng(2, 0);
  Tensor x = Tensor::Randn({3, 6}, rng);
  Tensor y = (*mlp)(x);
  autograd::RunBackward(ops::Sum(y));
  // Equivalent local model agrees exactly.
  nn::InitCtx ctx2(Device::kCpu, 9);
  nn::MLP local(6, 12, ctx2);
  Tensor y2 = local(x);
  autograd::RunBackward(ops::Sum(y2));
  auto grads = state->unit_handle(0).GatherFullGrads();
  auto named = local.NamedParameters();
  for (size_t i = 0; i < named.size(); ++i) {
    ASSERT_TRUE(grads[i].second.AllClose(named[i].second->grad(), 1e-6f,
                                         1e-7f));
  }
}

}  // namespace
}  // namespace fsdp
