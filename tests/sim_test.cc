// Simulator substrate tests: virtual streams, the caching allocator
// (per-stream pools, record_stream gating, splitting, retry/flush, stats),
// and the topology / collective cost models.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/allocator.h"
#include "sim/stream.h"
#include "sim/topology.h"

namespace fsdp::sim {
namespace {

TEST(SimStreamTest, SequentialOrdering) {
  SimStream s("compute");
  EXPECT_DOUBLE_EQ(s.Launch(0, 10), 10);
  // Issued early but queued behind the first op.
  EXPECT_DOUBLE_EQ(s.Launch(1, 5), 15);
  // Issued after the stream drained: starts at issue time.
  EXPECT_DOUBLE_EQ(s.Launch(100, 5), 105);
  EXPECT_DOUBLE_EQ(s.busy_us(), 20);
}

TEST(SimStreamTest, CrossStreamDependencies) {
  SimStream a("a"), b("b");
  SimTime e1 = a.Launch(0, 50);
  // b's op waits for a's completion even though issued at t=0.
  EXPECT_DOUBLE_EQ(b.Launch(0, 10, {e1}), 60);
  // Independent op on b queues behind it.
  EXPECT_DOUBLE_EQ(b.Launch(0, 10), 70);
}

// ------------------------------------------------------------- allocator

AllocatorConfig SmallConfig() {
  AllocatorConfig cfg;
  cfg.capacity_bytes = 100 << 20;  // 100 MiB
  cfg.cudamalloc_us = 10;
  cfg.cudamalloc_us_per_gb = 0;
  cfg.retry_flush_us = 500;
  cfg.flush_us_per_gb = 0;
  return cfg;
}

TEST(AllocatorTest, RoundingAndSplit) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(100, /*stream=*/1, 0, sync);  // rounds to 512
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(alloc.block_bytes(a.block), 512);
  auto b = alloc.Malloc((3 << 20) - 7, 1, 0, sync);  // large: 2 MiB rounding
  EXPECT_EQ(alloc.block_bytes(b.block), 4 << 20);

  // Free the 4 MiB block, then request 2 MiB: reuse with a split remainder.
  alloc.Free(b.block, 0);
  const int64_t reserved = alloc.stats(0).reserved_bytes;
  auto c = alloc.Malloc(2 << 20, 1, 0, sync);
  EXPECT_EQ(alloc.block_bytes(c.block), 2 << 20);
  EXPECT_EQ(alloc.stats(0).reserved_bytes, reserved);  // no new segment
  // The remainder serves another 2 MiB without cudaMalloc.
  auto d = alloc.Malloc(2 << 20, 1, 1, sync);
  EXPECT_EQ(alloc.stats(1).reserved_bytes, reserved);
  (void)d;
}

TEST(AllocatorTest, PerStreamPoolsDoNotMix) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(8 << 20, /*stream=*/1, 0, sync);
  alloc.Free(a.block, 0);
  // Same size from another stream cannot reuse the cached block.
  const int64_t reserved = alloc.stats(0).reserved_bytes;
  auto b = alloc.Malloc(8 << 20, /*stream=*/2, 0, sync);
  ASSERT_TRUE(b.ok);
  EXPECT_GT(alloc.stats(0).reserved_bytes, reserved);
  // But the original stream can.
  auto c = alloc.Malloc(8 << 20, /*stream=*/1, 0, sync);
  EXPECT_EQ(alloc.stats(0).reserved_bytes, reserved + (8 << 20));
  (void)c;
}

TEST(AllocatorTest, RecordStreamGatesReuse) {
  // The Sec 3.4 mechanism: a block consumed by another stream's kernel is
  // unusable until that kernel completes in GPU time.
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 1000.0; };
  auto a = alloc.Malloc(8 << 20, /*stream=*/1, 0, sync);
  alloc.RecordStreamUse(a.block, /*consumer_stream=*/2, /*completes_at=*/500);
  alloc.Free(a.block, /*cpu_now=*/10);
  // CPU at t=20 (< 500): cannot reuse; a new segment is allocated.
  const int64_t reserved = alloc.stats(20).reserved_bytes;
  auto b = alloc.Malloc(8 << 20, 1, 20, sync);
  EXPECT_GT(alloc.stats(20).reserved_bytes, reserved);
  alloc.Free(b.block, 30);
  // CPU at t=600 (> 500): the original block is reusable.
  auto c = alloc.Malloc(8 << 20, 1, 600, sync);
  EXPECT_EQ(alloc.stats(600).reserved_bytes, reserved + (8 << 20));
  (void)c;
}

TEST(AllocatorTest, SameStreamReuseNeedsNoEvent) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(8 << 20, 1, 0, sync);
  // Consumed by its own stream: ordering guarantees safety.
  alloc.RecordStreamUse(a.block, 1, 1e9);
  alloc.Free(a.block, 1);
  const int64_t reserved = alloc.stats(1).reserved_bytes;
  auto b = alloc.Malloc(8 << 20, 1, 2, sync);
  EXPECT_EQ(alloc.stats(2).reserved_bytes, reserved);
  (void)b;
}

TEST(AllocatorTest, RetryFlushesAndSyncs) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 5000.0; };
  // Fill the device with pending blocks.
  std::vector<CachingAllocator::BlockId> blocks;
  for (int i = 0; i < 10; ++i) {
    auto out = alloc.Malloc(10 << 20, 1, 0, sync);
    ASSERT_TRUE(out.ok);
    blocks.push_back(out.block);
  }
  for (auto id : blocks) {
    alloc.RecordStreamUse(id, 2, 9000);  // pending far in the future
    alloc.Free(id, 1);
  }
  // Device full of event-pending cache; next alloc must retry.
  auto out = alloc.Malloc(10 << 20, 1, 2, sync);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.retried);
  EXPECT_GE(out.cpu_time_after, 5000.0);  // synchronized with the device
  EXPECT_EQ(alloc.stats(out.cpu_time_after).num_alloc_retries, 1);
  // Cache flushed: reserved dropped to just the new block.
  EXPECT_EQ(alloc.stats(out.cpu_time_after).reserved_bytes, 10 << 20);
}

TEST(AllocatorTest, TrueOomAfterRetry) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(90 << 20, 1, 0, sync);
  ASSERT_TRUE(a.ok);
  auto b = alloc.Malloc(50 << 20, 1, 0, sync);  // in-use blocks can't flush
  EXPECT_FALSE(b.ok);
  EXPECT_TRUE(b.retried);
}

TEST(AllocatorTest, StatsTrackAllocatedActiveReserved) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(10 << 20, 1, 0, sync);
  auto b = alloc.Malloc(20 << 20, 1, 0, sync);
  EXPECT_EQ(alloc.stats(0).allocated_bytes, 30 << 20);
  EXPECT_EQ(alloc.stats(0).reserved_bytes, 30 << 20);
  alloc.RecordStreamUse(a.block, 2, 100);
  alloc.Free(a.block, 1);
  // Freed-but-pending counts as active, not allocated.
  EXPECT_EQ(alloc.stats(1).allocated_bytes, 20 << 20);
  EXPECT_EQ(alloc.stats(1).active_bytes, 30 << 20);
  EXPECT_EQ(alloc.stats(1).reserved_bytes, 30 << 20);
  // After the event passes, active drops.
  EXPECT_EQ(alloc.stats(101).active_bytes, 20 << 20);
  EXPECT_EQ(alloc.stats(101).peak_active, 30 << 20);
  alloc.Free(b.block, 102);
  EXPECT_EQ(alloc.stats(102).allocated_bytes, 0);
  EXPECT_EQ(alloc.stats(102).peak_allocated, 30 << 20);
}

TEST(AllocatorTest, DoubleFreeDies) {
  CachingAllocator alloc(SmallConfig());
  auto sync = [] { return 0.0; };
  auto a = alloc.Malloc(1 << 20, 1, 0, sync);
  alloc.Free(a.block, 0);
  EXPECT_DEATH(alloc.Free(a.block, 0), "double free");
}

TEST(AllocatorPropertyTest, ConservationUnderRandomWorkload) {
  // Invariants under random malloc/free: allocated <= active <= reserved <=
  // capacity; allocated equals the sum of live requests.
  CachingAllocator alloc(SmallConfig());
  Rng rng(123, 0);
  auto sync = [] { return 1e9; };
  std::vector<std::pair<CachingAllocator::BlockId, int64_t>> live;
  double cpu = 0;
  for (int step = 0; step < 2000; ++step) {
    cpu += 1;
    if (live.size() < 20 && rng.NextUniform() < 0.6) {
      const int64_t req = 512 * (1 + static_cast<int64_t>(rng.NextBelow(64)));
      const int stream = 1 + static_cast<int>(rng.NextBelow(3));
      auto out = alloc.Malloc(req, stream, cpu, sync);
      cpu = out.cpu_time_after;
      if (out.ok) {
        live.emplace_back(out.block, alloc.block_bytes(out.block));
        if (rng.NextUniform() < 0.3) {
          alloc.RecordStreamUse(out.block, 1 + (stream % 3),
                                cpu + rng.NextUniform(0, 100));
        }
      }
    } else if (!live.empty()) {
      const size_t idx = rng.NextBelow(live.size());
      alloc.Free(live[idx].first, cpu);
      live.erase(live.begin() + static_cast<int64_t>(idx));
    }
    int64_t expect_allocated = 0;
    for (auto& [id, bytes] : live) expect_allocated += bytes;
    const auto& st = alloc.stats(cpu);
    ASSERT_EQ(st.allocated_bytes, expect_allocated);
    ASSERT_LE(st.allocated_bytes, st.active_bytes);
    ASSERT_LE(st.active_bytes, st.reserved_bytes);
    ASSERT_LE(st.reserved_bytes, SmallConfig().capacity_bytes);
  }
}

// ---------------------------------------------------- topology / cost model

TEST(TopologyTest, GroupFormation) {
  Topology topo{4, 8};  // 32 GPUs
  EXPECT_EQ(topo.world(), 32);
  // F=8: shard groups fit within hosts.
  EXPECT_EQ(ShardGroup(topo, 8).size, 8);
  EXPECT_TRUE(ShardGroup(topo, 8).intra_host());
  // F=16 spans 2 hosts.
  EXPECT_EQ(ShardGroup(topo, 16).hosts, 2);
  // Replicate group for F=8: 4 replicas, one per host.
  Group repl = ReplicateGroup(topo, 8);
  EXPECT_EQ(repl.size, 4);
  EXPECT_EQ(repl.hosts, 4);
  // F = world: single replica.
  EXPECT_EQ(ReplicateGroup(topo, 32).size, 1);
  EXPECT_EQ(WorldGroup(topo).hosts, 4);
}

TEST(CollectiveModelTest, MonotoneInSizeAndGroup) {
  SimConstants c;
  Topology topo{4, 8};
  CollectiveModel cm(c, topo);
  const Group intra{8, 1};
  const Group inter{32, 4};
  // More bytes -> more time.
  EXPECT_LT(cm.AllGatherBase(1 << 20, intra), cm.AllGatherBase(64 << 20, intra));
  // Intra-host beats inter-host for the same shard size.
  EXPECT_LT(cm.AllGatherBase(8 << 20, intra), cm.AllGatherBase(8 << 20, inter));
  // Degenerate group: launch overhead only.
  EXPECT_DOUBLE_EQ(cm.AllGatherBase(8 << 20, Group{1, 1}),
                   c.collective_launch_us);
}

TEST(CollectiveModelTest, Fig2aOrdering) {
  // Paper Fig 2(a): All-Gather Base < All-Gather (list) << uneven fallback.
  SimConstants c;
  Topology topo{2, 8};
  CollectiveModel cm(c, topo);
  const Group g{16, 2};
  const int64_t shard = 32 << 20;
  const double base = cm.AllGatherBase(shard, g);
  const double list = cm.AllGatherListOutput(shard, g);
  const double uneven = cm.AllGatherUneven(shard * 16, g);
  EXPECT_LT(base, list);
  EXPECT_LT(list, uneven);
  // Serialized broadcasts pay per-op launch/latency and unsaturated
  // bandwidth on W smaller messages.
  EXPECT_GT(uneven, 1.8 * base);
}

TEST(CollectiveModelTest, Fig2bKnee) {
  // Fixed total volume, varying per-collective size: total time explodes as
  // the per-op size shrinks (launch overhead + unsaturated bandwidth).
  SimConstants c;
  Topology topo{2, 8};
  CollectiveModel cm(c, topo);
  const Group g{16, 2};
  const int64_t total = 1LL << 32;  // 2^30 fp32 elements
  auto total_time = [&](int64_t per_op) {
    const int64_t ops = total / per_op;
    return ops * cm.AllGatherBase(per_op / 16, g);
  };
  const double at_128mb = total_time(128 << 20);
  const double at_8mb = total_time(8 << 20);
  const double at_1mb = total_time(1 << 20);
  EXPECT_LT(at_128mb, at_8mb);
  EXPECT_LT(at_8mb, at_1mb);
  EXPECT_GT(at_1mb, 3 * at_128mb);  // rapid growth below the knee
}

TEST(CollectiveModelTest, AllReduceTwiceReduceScatter) {
  // Ring AllReduce moves ~2x a ReduceScatter of the same buffer.
  SimConstants c;
  c.collective_launch_us = 0;
  c.hop_latency_us = 0;
  Topology topo{2, 8};
  CollectiveModel cm(c, topo);
  const Group g{16, 2};
  const double rs = cm.ReduceScatter(256 << 20, g);
  const double ar = cm.AllReduce(256 << 20, g);
  EXPECT_NEAR(ar / rs, 2.0, 0.2);
}

TEST(ComputeModelTest, DtypeAndEfficiency) {
  SimConstants c;
  ComputeModel pm(c);
  const double flops = 1e12;
  // BF16 tensor cores are ~2x the TF32 path in this calibration.
  EXPECT_LT(pm.MatmulTime(flops, DType::kBF16),
            pm.MatmulTime(flops, DType::kF32));
  // 1 TFLOP at 312*0.62 TFLOPS ~ 5.2 ms.
  EXPECT_NEAR(pm.MatmulTime(flops, DType::kBF16), 1e12 / (312e6 * 0.62), 50);
}

}  // namespace
}  // namespace fsdp::sim
