// Fault-tolerant collective runtime tests: scripted fault injection (hang /
// crash / skip / delay), watchdog timeout + culprit diagnosis, desync
// detection at the signature rendezvous, graceful abort (every waiter wakes
// with the abort Status, no keepalive leaks), the flight-recorder JSON dump,
// Barrier() routed through the Issue() path, and error propagation out of
// the FSDP / DDP train step (the step degrades instead of crashing).
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "comm/process_group.h"
#include "common/threading.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/transformer.h"
#include "obs/artifact.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using comm::CollectiveOptions;
using comm::FaultKind;
using comm::FaultSpec;

bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

int64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Get().GetCounter(name).value();
}

/// Dumps land under obs::ArtifactPath; point it at the test temp dir (ctest
/// runs from build/tests, where ./build does not exist).
void UseTempArtifactDir() {
  ::setenv("FSDP_ARTIFACT_DIR", ::testing::TempDir().c_str(), 1);
}

nn::ModulePtr MakeModel(uint64_t seed) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank) {
  return ops::IndexTensor({(rank * 3 + 1) % 13, (rank * 5 + 2) % 13,
                           (rank * 7 + 3) % 13, (rank + 4) % 13},
                          {1, 4});
}

Tensor RankTargets(int rank) {
  return ops::IndexTensor({(rank + 5) % 13, (rank + 6) % 13, (rank + 7) % 13,
                           (rank + 8) % 13},
                          {4});
}

TEST(FaultTest, WatchdogAbortsHungCollectiveAndNamesCulprit) {
  UseTempArtifactDir();
  const int w = 4;
  const int64_t timeouts_before = Counter("comm.timeouts");
  const int64_t aborts_before = Counter("comm.aborts");
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("hangtest");
  comm->SetDefaultTimeout(80);
  // Rank 1's worker receives collective #2 and never enters it.
  comm->InjectFault({FaultKind::kHang, /*rank=*/1, /*seq=*/2, "", 0});

  std::vector<Status> final_status(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(16, static_cast<float>(r));
    // #0 and #1 complete normally; #2 hangs on rank 1 until the watchdog
    // fires and aborts the communicator, waking every rank with the
    // diagnosis Status.
    ASSERT_TRUE(pg.AllReduce(buf.data(), 16).WaitStatus().ok());
    ASSERT_TRUE(pg.AllReduce(buf.data(), 16).WaitStatus().ok());
    final_status[r] = pg.AllReduce(buf.data(), 16).WaitStatus();
  });

  EXPECT_TRUE(comm->aborted());
  for (int r = 0; r < w; ++r) {
    ASSERT_FALSE(final_status[r].ok()) << "rank " << r;
    EXPECT_TRUE(Contains(final_status[r].message(), "rank 1"))
        << final_status[r].message();
    EXPECT_TRUE(Contains(final_status[r].message(), "#2"))
        << final_status[r].message();
  }
  const comm::WatchdogDiagnosis diag = comm->last_diagnosis();
  EXPECT_EQ(diag.culprit_rank, 1);
  EXPECT_EQ(diag.culprit_seq, 2);
  EXPECT_FALSE(diag.desync);
  EXPECT_TRUE(Contains(diag.reason, "hung")) << diag.reason;
  // The healthy ranks were all blocked in the same collective.
  EXPECT_EQ(diag.expected_next.size(), 3u);
  // The watchdog dumped the flight recorder before aborting.
  EXPECT_FALSE(comm->flight_dump_path().empty());
  EXPECT_TRUE(std::filesystem::exists(comm->flight_dump_path()));
  EXPECT_GE(Counter("comm.timeouts"), timeouts_before + 1);
  EXPECT_GE(Counter("comm.aborts"), aborts_before + 1);
}

TEST(FaultTest, DesyncDetectionNamesSkippingRank) {
  UseTempArtifactDir();
  const int w = 4;
  const int64_t desyncs_before = Counter("comm.desyncs");
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("desynctest");
  comm->SetDesyncDetection(true);
  // Backstop: if the rendezvous somehow missed the mismatch, the watchdog
  // would still end the test.
  comm->SetDefaultTimeout(500);
  // Rank 1 silently skips "alpha" — the classic diverged-control-flow
  // desync. Its worker then arrives at the rendezvous holding "beta" while
  // everyone else holds "alpha".
  comm->InjectFault({FaultKind::kSkip, /*rank=*/1, /*seq=*/-1, "alpha", 0});

  std::vector<Status> alpha_status(w), beta_status(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(8, 1.f);
    CollectiveOptions a;
    a.tag = "alpha";
    alpha_status[r] = pg.AllReduce(buf.data(), 8, a).WaitStatus();
    CollectiveOptions b;
    b.tag = "beta";
    beta_status[r] = pg.AllReduce(buf.data(), 8, b).WaitStatus();
  });

  EXPECT_TRUE(comm->aborted());
  const comm::WatchdogDiagnosis diag = comm->last_diagnosis();
  EXPECT_TRUE(diag.desync);
  EXPECT_EQ(diag.culprit_rank, 1);
  EXPECT_TRUE(Contains(diag.reason, "desync")) << diag.reason;
  EXPECT_TRUE(Contains(diag.reason, "rank 1")) << diag.reason;
  // The skip itself completes OK on rank 1 (it "ran" from that rank's point
  // of view); the collectives caught in the abort carry the diagnosis.
  EXPECT_TRUE(alpha_status[1].ok());
  for (int r = 0; r < w; ++r) {
    EXPECT_FALSE(beta_status[r].ok()) << "rank " << r;
  }
  EXPECT_GE(Counter("comm.desyncs"), desyncs_before + 1);
}

TEST(FaultTest, CrashedRankDiagnosed) {
  UseTempArtifactDir();
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("crashtest");
  comm->SetDefaultTimeout(80);
  // Rank 2 dies at collective #1: its worker stops draining entirely.
  comm->InjectFault({FaultKind::kCrash, /*rank=*/2, /*seq=*/1, "", 0});

  std::vector<Status> final_status(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(8, static_cast<float>(r));
    ASSERT_TRUE(pg.AllReduce(buf.data(), 8).WaitStatus().ok());
    final_status[r] = pg.AllReduce(buf.data(), 8).WaitStatus();
  });

  EXPECT_TRUE(comm->aborted());
  const comm::WatchdogDiagnosis diag = comm->last_diagnosis();
  EXPECT_EQ(diag.culprit_rank, 2);
  EXPECT_EQ(diag.culprit_seq, 1);
  EXPECT_TRUE(Contains(diag.reason, "crashed")) << diag.reason;
  // The progress table exposes the full dead set (the elastic runtime's
  // source of truth when several ranks die in one step).
  EXPECT_EQ(comm->UnhealthyRanks(), std::vector<int>{2});
  for (int r = 0; r < w; ++r) {
    EXPECT_FALSE(final_status[r].ok()) << "rank " << r;
  }
}

TEST(FaultTest, DelayFaultIsBenignBelowTimeout) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetDefaultTimeout(2000);
  // A 5 ms straggler, well under the watchdog deadline: everything
  // completes OK and nothing aborts.
  comm->InjectFault({FaultKind::kDelay, /*rank=*/0, /*seq=*/0, "", 5000});

  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(4, 1.f);
    EXPECT_TRUE(pg.AllReduce(buf.data(), 4).WaitStatus().ok());
    EXPECT_EQ(buf[0], static_cast<float>(w));
  });
  EXPECT_FALSE(comm->aborted());
}

TEST(FaultTest, WaitForTimesOutWithoutAborting) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->InjectFault({FaultKind::kDelay, /*rank=*/0, /*seq=*/0, "", 50000});

  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(4, 1.f);
    CollectiveOptions opts;
    opts.async = true;
    comm::Work work = pg.AllReduce(buf.data(), 4, opts);
    if (r == 0) {
      // The 50 ms delayed op cannot finish within 1 ms. WaitFor reports the
      // timeout but does NOT abort the communicator — the op keeps running.
      Status bounded = work.WaitFor(1);
      EXPECT_FALSE(bounded.ok());
      EXPECT_TRUE(Contains(bounded.message(), "timed out"))
          << bounded.message();
    }
    EXPECT_TRUE(work.WaitStatus().ok());
    EXPECT_EQ(buf[0], static_cast<float>(w));
  });
  EXPECT_FALSE(comm->aborted());
}

TEST(FaultTest, BarrierRoutesThroughIssue) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  std::atomic<int> arrived{0};
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    arrived.fetch_add(1);
    comm::Work first = pg.Barrier();
    // The barrier is a real rendezvous: nobody passes until everyone
    // arrived.
    EXPECT_EQ(arrived.load(), w) << "rank " << r;
    // And a real collective: it carries a per-rank sequence number and a
    // flight-recorder entry like any other op.
    EXPECT_EQ(first.seq(), 0);
    EXPECT_EQ(pg.Barrier().seq(), 1);
    const auto records = comm->flight_recorder().Records(r);
    ASSERT_GE(records.size(), 2u);
    EXPECT_EQ(records[0].sig.kind, obs::EventKind::kBarrier);
    EXPECT_EQ(records[0].sig.label, "barrier");
    EXPECT_EQ(records[0].state, comm::OpState::kCompleted);
  });
}

// TSan-targeted stress: Abort() racing concurrent Wait()/WaitFor() and
// in-flight async collectives. Every waiter must wake exactly once with a
// definite Status, and the keepalive tensors pinned by the async tensor
// overloads must all be released.
TEST(FaultTest, AbortRacesConcurrentWaitersAndReleasesKeepalives) {
  const int w = 4;
  const int ops_per_rank = 16;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("aborttest");

  std::vector<std::vector<std::weak_ptr<TensorImpl>>> staged(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<comm::Work> works;
    works.reserve(ops_per_rank);
    for (int i = 0; i < ops_per_rank; ++i) {
      Tensor buf = Tensor::Zeros({64});
      staged[r].push_back(buf.impl());
      CollectiveOptions opts;
      opts.async = true;
      opts.tag = "stress" + std::to_string(i);
      works.push_back(pg.AllReduce(buf, opts));
      // buf goes out of scope here: only the Work keepalive pins it.
    }
    // Two ranks race Abort() against everyone's waits; first abort wins.
    if (r == 1 || r == 2) {
      comm->Abort(Status::Internal("scripted abort from rank " +
                                   std::to_string(r)));
    }
    for (comm::Work& work : works) {
      // Bounded and unbounded waits from the same thread; both must return
      // (never hang) and agree once the op is complete.
      (void)work.WaitFor(0.2);
      Status st = work.WaitStatus();
      if (!st.ok()) {
        EXPECT_TRUE(Contains(st.message(), "scripted abort")) << st.message();
      }
      EXPECT_TRUE(work.Completed());
    }
  });

  EXPECT_TRUE(comm->aborted());
  EXPECT_TRUE(Contains(comm->abort_status().message(), "scripted abort"));
  // Every op completed (successfully or with the abort Status), so every
  // keepalive tensor must have been released by the workers.
  for (int r = 0; r < w; ++r) {
    for (size_t i = 0; i < staged[r].size(); ++i) {
      EXPECT_TRUE(staged[r][i].expired()) << "rank " << r << " op " << i;
    }
  }
}

TEST(FaultTest, FlightRecorderGoldenDump) {
  UseTempArtifactDir();
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("golden");
  comm->SetDefaultTimeout(60);

  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(8, 1.f);
    CollectiveOptions warm;
    warm.tag = "warm";
    ASSERT_TRUE(pg.AllReduce(buf.data(), 8, warm).WaitStatus().ok());
  });
  // Arm the hang at a known point: rank 1, collective #1 ("stuck").
  comm->InjectFault({FaultKind::kHang, /*rank=*/1, /*seq=*/1, "", 0});
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(8, 1.f);
    CollectiveOptions opts;
    opts.tag = "stuck";
    EXPECT_FALSE(pg.AllReduce(buf.data(), 8, opts).WaitStatus().ok());
  });

  const std::string path = comm->flight_dump_path();
  ASSERT_FALSE(path.empty());
  auto parsed = obs::ParseJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = *parsed;

  EXPECT_EQ(root["communicator"].AsString(), "golden");
  EXPECT_EQ(root["world_size"].AsNumber(), 2);
  EXPECT_TRUE(root["aborted"].AsBool());

  // The diagnosis names the stuck op, the culprit, and what the healthy
  // ranks expected next.
  const obs::JsonValue& diag = root["diagnosis"];
  EXPECT_EQ(diag["culprit_rank"].AsNumber(), 1);
  EXPECT_EQ(diag["culprit_seq"].AsNumber(), 1);
  EXPECT_TRUE(Contains(diag["stuck_op"].AsString(), "AR:stuck"))
      << diag["stuck_op"].AsString();
  EXPECT_FALSE(diag["desync"].AsBool());
  const obs::JsonArray& expected = diag["expected_next"].AsArray();
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected[0]["rank"].AsNumber(), 0);
  EXPECT_EQ(expected[0]["seq"].AsNumber(), 1);
  EXPECT_TRUE(Contains(expected[0]["op"].AsString(), "AR:stuck"));

  // Per-rank rings hold the full recent history with final states.
  const obs::JsonArray& ranks = root["ranks"].AsArray();
  ASSERT_EQ(ranks.size(), 2u);
  const obs::JsonArray& r0 = ranks[0]["records"].AsArray();
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0]["seq"].AsNumber(), 0);
  EXPECT_EQ(r0[0]["op"].AsString(), "AR:warm");
  EXPECT_EQ(r0[0]["state"].AsString(), "completed");
  EXPECT_EQ(r0[1]["op"].AsString(), "AR:stuck");
  // The dump is a snapshot taken when the watchdog fired, strictly before
  // any waiter observes the abort: the healthy rank is frozen mid-op
  // ("started" — entered, waiting on the hung peer), not yet "aborted".
  EXPECT_EQ(r0[1]["state"].AsString(), "started");
  // The hung rank never completed #1.
  const obs::JsonArray& r1 = ranks[1]["records"].AsArray();
  ASSERT_EQ(r1.size(), 2u);
  EXPECT_EQ(r1[1]["op"].AsString(), "AR:stuck");
  EXPECT_NE(r1[1]["state"].AsString(), "completed");

  // The same records feed the Chrome-trace exporter via the "flight" lane.
  bool found_flight_span = false;
  for (const obs::TraceEvent& e : comm->FlightTraceEvents()) {
    if (e.lane == "flight" && Contains(e.unit, "AR:warm")) {
      found_flight_span = true;
    }
  }
  EXPECT_TRUE(found_flight_span);

  // The dump carries the shared artifact envelope (schema_version + meta),
  // like every other generated artifact in the repo.
  ASSERT_TRUE(obs::ValidateArtifactJson(root).ok());
  EXPECT_EQ(root["schema_version"].AsNumber(), obs::kArtifactSchemaVersion);
  EXPECT_EQ(root["meta"]["world_size"].AsNumber(), 2);
  EXPECT_EQ(root["meta"]["preset"].AsString(), "golden");
}

TEST(FaultTest, StepKeyedFaultFiresOnlyAtItsTrainStep) {
  UseTempArtifactDir();
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("steptest");
  comm->SetDefaultTimeout(80);
  // The same tag recurs every step; the step selector (AND-ed with the tag)
  // pins the hang to training step 2 — the elastic drills' way of killing a
  // rank "at step k" without counting sequence numbers.
  comm::FaultSpec f;
  f.kind = FaultKind::kHang;
  f.rank = 1;
  f.tag = "grad";
  f.step = 2;
  comm->InjectFault(f);

  std::vector<std::vector<Status>> status(4, std::vector<Status>(w));
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf(8, 1.f);
    for (int64_t s = 0; s < 4 && !comm->aborted(); ++s) {
      comm->SetTrainStep(s);
      CollectiveOptions opts;
      opts.tag = "grad";
      status[s][r] = pg.AllReduce(buf.data(), 8, opts).WaitStatus();
    }
  });

  // Steps 0 and 1 passed untouched; step 2 hit the hang and aborted.
  for (int r = 0; r < w; ++r) {
    EXPECT_TRUE(status[0][r].ok()) << "rank " << r;
    EXPECT_TRUE(status[1][r].ok()) << "rank " << r;
    EXPECT_FALSE(status[2][r].ok()) << "rank " << r;
  }
  EXPECT_TRUE(comm->aborted());
  EXPECT_EQ(comm->last_diagnosis().culprit_rank, 1);
}

TEST(FaultTest, FsdpStepPropagatesAbortInsteadOfCrashing) {
  UseTempArtifactDir();
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  std::vector<nn::ModulePtr> models(w);
  std::vector<std::shared_ptr<core::FsdpState>> states(w);
  RunOnRanks(w, [&](int r) {
    models[r] = MakeModel(42);
    core::FsdpOptions opts;
    opts.strategy = core::ShardingStrategy::kFullShard;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    states[r] = core::FullyShard(models[r], mesh, r, opts);
  });
  ASSERT_GE(states[0]->num_units(), 2);
  // Hang rank 1's worker on the AllGather of one non-root unit (tags are
  // the unit FQNs), then arm the watchdog. Construction ran fault-free.
  const std::string victim = states[0]->unit_name(1);
  mesh.ShardGroup(0).communicator()->InjectFault(
      {FaultKind::kHang, /*rank=*/1, /*seq=*/-1, victim, 0});
  mesh.SetDefaultTimeout(100);

  RunOnRanks(w, [&](int r) {
    // The step must complete structurally — no crash, no deadlock — with
    // the abort surfaced through FsdpState::status().
    Tensor loss =
        ops::CrossEntropy((*models[r])(RankTokens(r)), RankTargets(r));
    autograd::RunBackward(loss);
    ASSERT_FALSE(states[r]->status().ok()) << "rank " << r;
    EXPECT_TRUE(Contains(states[r]->status().message(), "rank 1"))
        << states[r]->status().message();
    // The failed step must not corrupt optimizer-visible state: the garbage
    // reduction was dropped, so no sharded gradient was published.
    for (int u = 0; u < states[r]->num_units(); ++u) {
      EXPECT_FALSE(states[r]->unit_handle(u).sharded_param().grad().defined())
          << "rank " << r << " unit " << u;
    }
  });
  EXPECT_TRUE(mesh.ShardGroup(0).communicator()->aborted());
}

TEST(FaultTest, DdpStepPropagatesAbortInsteadOfCrashing) {
  UseTempArtifactDir();
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("ddpfault");
  std::vector<std::unique_ptr<ddp::DistributedDataParallel>> replicas(w);
  RunOnRanks(w, [&](int r) {
    ddp::DdpOptions opts;
    opts.bucket_cap_numel = 400;  // several buckets
    replicas[r] = std::make_unique<ddp::DistributedDataParallel>(
        MakeModel(42), comm::ProcessGroup(comm, r), opts);
  });
  ASSERT_GE(replicas[0]->num_buckets(), 2);
  comm->InjectFault({FaultKind::kHang, /*rank=*/2, /*seq=*/-1, "ddp_bucket0",
                     0});
  comm->SetDefaultTimeout(100);

  RunOnRanks(w, [&](int r) {
    ddp::DistributedDataParallel& ddp = *replicas[r];
    Tensor loss = ops::CrossEntropy(ddp(RankTokens(r)), RankTargets(r));
    autograd::RunBackward(loss);
    ASSERT_FALSE(ddp.status().ok()) << "rank " << r;
    EXPECT_TRUE(Contains(ddp.status().message(), "rank 2"))
        << ddp.status().message();
    // Grads exist (backward ran) but hold the local, un-scattered values —
    // the aborted bucket buffers were never copied back.
    for (Tensor* slot : ddp.module().ParameterSlots()) {
      EXPECT_TRUE(slot->grad().defined());
    }
  });
  EXPECT_TRUE(comm->aborted());
}

}  // namespace
}  // namespace fsdp
