// Plan-compiler suite (plan/passes.h): PlanValidator rejection of
// deliberately-corrupt plans, the rewrite passes' behavior on hand-built and
// builder-emitted plans, and the two acceptance properties of the compiler —
// fusion + reordering reduce calibrated-sim exposed communication time on a
// many-small-units workload, and the static memory plan's peak stays within
// the free-list caching allocator's peak.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "plan/builder.h"
#include "plan/passes.h"
#include "plan/plan.h"
#include "sim/allocator.h"
#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"

namespace fsdp {
namespace {

// ---------------------------------------------------------------------- util

plan::Instr MakeInstr(plan::Op op, int unit, plan::Phase phase,
                      plan::Lane lane, std::vector<int> deps = {}) {
  plan::Instr in;
  in.op = op;
  in.unit = unit;
  in.phase = phase;
  in.lane = lane;
  in.deps = std::move(deps);
  return in;
}

plan::Instr Unshard(int unit, std::vector<int> deps = {}) {
  return MakeInstr(plan::Op::kUnshard, unit, plan::Phase::kNone,
                   plan::Lane::kComm, std::move(deps));
}

plan::Instr Fwd(int unit, std::vector<int> deps = {}) {
  return MakeInstr(plan::Op::kCompute, unit, plan::Phase::kForward,
                   plan::Lane::kCompute, std::move(deps));
}

plan::Instr Bwd(int unit, std::vector<int> deps = {}) {
  return MakeInstr(plan::Op::kCompute, unit, plan::Phase::kBackward,
                   plan::Lane::kCompute, std::move(deps));
}

plan::Instr Reduce(int unit, std::vector<int> deps = {}) {
  return MakeInstr(plan::Op::kReduceGrad, unit, plan::Phase::kBackward,
                   plan::Lane::kComm, std::move(deps));
}

plan::Instr Reshard(int unit, std::vector<int> deps = {}) {
  return MakeInstr(plan::Op::kReshard, unit, plan::Phase::kBackward,
                   plan::Lane::kHost, std::move(deps));
}

plan::StepPlan MakePlan(std::vector<std::string> names,
                        std::vector<plan::Instr> instrs) {
  plan::StepPlan p;
  p.unit_names = std::move(names);
  p.instrs = std::move(instrs);
  return p;
}

// ------------------------------------------------------------ PlanValidator

TEST(PlanValidatorTest, AcceptsEveryBuilderPlan) {
  const std::vector<std::string> names{"[root]", "a", "b", "c"};
  plan::PlanValidator v;
  for (bool sim_shape : {false, true}) {
    for (bool raf : {false, true}) {
      for (int mb : {1, 3}) {
        plan::FsdpPlanOptions o = sim_shape ? plan::FsdpPlanOptions::Sim()
                                            : plan::FsdpPlanOptions::Runtime();
        o.reshard_after_forward = raf;
        o.microbatches = mb;
        if (mb > 1) o.accum = plan::AccumMode::kReduceLastMicrobatch;
        const Status st = v.Check(plan::BuildFsdpStepPlan(names, o));
        EXPECT_TRUE(st.ok()) << st.message();
      }
    }
  }
}

TEST(PlanValidatorTest, RejectsForwardDependency) {
  plan::StepPlan p = MakePlan({"a"}, {Unshard(0, {0})});  // self edge = cycle
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cycle"), std::string::npos) << st.message();
}

TEST(PlanValidatorTest, RejectsRedundantUnshard) {
  plan::StepPlan p = MakePlan({"a"}, {Unshard(0), Unshard(0)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("redundant unshard"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsComputeAfterReshard) {
  plan::StepPlan p = MakePlan(
      {"a"}, {Unshard(0), Fwd(0, {0}), Reshard(0), Bwd(0)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("use-after-free"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsDoubleReshard) {
  plan::StepPlan p = MakePlan(
      {"a"}, {Unshard(0), Fwd(0, {0}), Reshard(0), Reshard(0)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("double free"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsGradDoubleFree) {
  plan::StepPlan p = MakePlan(
      {"a"},
      {Unshard(0), Bwd(0, {0}),
       MakeInstr(plan::Op::kFreeGrad, 0, plan::Phase::kBackward,
                 plan::Lane::kHost),
       MakeInstr(plan::Op::kFreeGrad, 0, plan::Phase::kBackward,
                 plan::Lane::kHost)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("double free of gradient"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsDuplicateReduction) {
  plan::StepPlan p = MakePlan(
      {"a"}, {Unshard(0), Bwd(0, {0}), Reduce(0, {1}), Reduce(0, {1})});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("duplicate reduction"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsReductionWithoutBackward) {
  plan::StepPlan p = MakePlan({"a"}, {Unshard(0), Fwd(0, {0}), Reduce(0)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("without a backward"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsDroppedReduction) {
  // Both units run backward in microbatch 0, which syncs (it reduces unit
  // 0) — dropping unit 1's reduction is the classic silently-wrong rewrite.
  plan::StepPlan p = MakePlan(
      {"a", "b"},
      {Unshard(0), Unshard(1), Bwd(1, {1}), Bwd(0, {0}), Reduce(0, {3})});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("drops the reduction"), std::string::npos);
}

TEST(PlanValidatorTest, RejectsInstructionAfterOptimStep) {
  plan::StepPlan p = MakePlan(
      {"a"}, {Unshard(0), Fwd(0, {0}),
              MakeInstr(plan::Op::kOptimStep, -1, plan::Phase::kNone,
                        plan::Lane::kCompute),
              Fwd(0)});
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("after kOptimStep"), std::string::npos);
}

TEST(PlanValidatorTest, AcceptsReduceOnlyLogs) {
  // DDP's executed plan records bucket reduces without computes.
  plan::StepPlan p = MakePlan({"b0", "b1"}, {Reduce(0), Reduce(1)});
  const Status st = plan::PlanValidator{}.Check(p);
  EXPECT_TRUE(st.ok()) << st.message();
}

// ----------------------------------------------------------------- rewrites

TEST(HoistUnshardsTest, HoistsAcrossIndependentCompute) {
  plan::StepPlan p = MakePlan(
      {"a", "b"}, {Unshard(0), Fwd(0, {0}), Unshard(1), Fwd(1, {2})});
  plan::PassOptions opt;
  EXPECT_EQ(plan::HoistUnshards(p, opt), 1);
  const auto canon = p.Canonical();
  ASSERT_EQ(canon.size(), 4u);
  // b's AllGather now overlaps a's forward.
  EXPECT_EQ(canon[0], "UNSHARD:a");
  EXPECT_EQ(canon[1], "UNSHARD:b");
  EXPECT_EQ(canon[2], "FWD:a");
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
}

TEST(HoistUnshardsTest, RespectsComputeBudget) {
  plan::StepPlan p = MakePlan(
      {"a", "b"},
      {Unshard(0), Fwd(0, {0}), Fwd(0), Fwd(0), Unshard(1), Fwd(1, {4})});
  plan::PassOptions opt;
  opt.max_hoist_computes = 2;
  EXPECT_EQ(plan::HoistUnshards(p, opt), 1);
  // Only two of a's three forward segments may be crossed.
  EXPECT_EQ(p.Canonical()[2], "UNSHARD:b");
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
}

TEST(FuseAllGathersTest, BatchesAdjacentSmallUnshards) {
  plan::StepPlan p = MakePlan(
      {"a", "b", "c"},
      {Unshard(0), Unshard(1), Unshard(2), Fwd(0, {0}), Fwd(1, {1}),
       Fwd(2, {2})});
  plan::PassOptions opt;
  opt.unit_shard_bytes = {1024, 1024, 1024};
  opt.fuse_below_bytes = 1 << 20;
  EXPECT_EQ(plan::FuseAllGathers(p, opt), 1);
  ASSERT_EQ(p.size(), 4);
  const plan::Instr& fused = p.instrs[0];
  EXPECT_EQ(fused.op, plan::Op::kUnshard);
  EXPECT_EQ(fused.batch_units, (std::vector<int>{1, 2}));
  EXPECT_EQ(fused.bytes, 3 * 1024);
  EXPECT_EQ(p.Canonical()[0], "UNSHARD:a+b+c");
  // Every compute's dep collapsed onto the fused collective.
  for (int i = 1; i < p.size(); ++i) {
    EXPECT_EQ(p.instrs[static_cast<size_t>(i)].deps, (std::vector<int>{0}));
  }
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
}

TEST(FuseAllGathersTest, LeavesLargeCollectivesAlone) {
  plan::StepPlan p = MakePlan(
      {"a", "b"}, {Unshard(0), Unshard(1), Fwd(0, {0}), Fwd(1, {1})});
  plan::PassOptions opt;
  opt.unit_shard_bytes = {8 << 20, 8 << 20};
  opt.fuse_below_bytes = 1 << 20;  // both are above the threshold
  EXPECT_EQ(plan::FuseAllGathers(p, opt), 0);
  EXPECT_EQ(p.size(), 4);
}

TEST(SinkThenFuseTest, PacksReduceChainsAndBatchesThem) {
  // Backward order: bwd b, reduce b, bwd a, reduce a. Sinking b's reduce
  // across a's backward makes the two reduces adjacent; fusion then merges
  // them into one batched ReduceScatter.
  plan::StepPlan p = MakePlan(
      {"a", "b"},
      {Unshard(0), Unshard(1), Bwd(1, {1}), Reduce(1, {2}), Bwd(0, {0}),
       Reduce(0, {4})});
  plan::PassOptions opt;
  opt.unit_reduce_bytes = {1024, 1024};
  opt.fuse_below_bytes = 1 << 20;
  EXPECT_EQ(plan::SinkReduces(p, opt), 1);
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
  EXPECT_EQ(plan::FuseReduceScatters(p, opt), 1);
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
  int reduces = 0;
  for (const plan::Instr& in : p.instrs) {
    if (in.op == plan::Op::kReduceGrad) {
      ++reduces;
      EXPECT_EQ(plan::CoveredUnits(in).size(), 2u);
    }
  }
  EXPECT_EQ(reduces, 1);
}

TEST(FuseReduceScattersTest, SkipsReplicaAllReduceChains) {
  plan::StepPlan p = MakePlan(
      {"a", "b"},
      {Unshard(0), Unshard(1), Bwd(1, {1}), Reduce(1, {2}),
       MakeInstr(plan::Op::kAllReduceReplicas, 1, plan::Phase::kBackward,
                 plan::Lane::kComm),
       Bwd(0, {0}), Reduce(0, {5})});
  plan::PassOptions opt;
  opt.unit_reduce_bytes = {1024, 1024};
  opt.fuse_below_bytes = 1 << 20;
  EXPECT_EQ(plan::FuseReduceScatters(p, opt), 0);
}

TEST(PassManagerTest, DefaultPipelineReportsEveryPass) {
  const std::vector<std::string> names{"[root]", "a", "b", "c"};
  plan::StepPlan p =
      plan::BuildFsdpStepPlan(names, plan::FsdpPlanOptions::Sim());
  plan::PassOptions opt;
  opt.unit_shard_bytes.assign(names.size(), 1 << 20);
  opt.unit_reduce_bytes.assign(names.size(), 1 << 20);
  opt.fuse_below_bytes = 16 << 20;
  const plan::PassResult res = plan::PassManager::Default(opt).Run(p);
  ASSERT_EQ(res.applied.size(), 4u);
  EXPECT_EQ(res.applied[0].first, "hoist-unshards");
  EXPECT_EQ(res.applied[1].first, "fuse-allgathers");
  EXPECT_EQ(res.applied[2].first, "sink-reduces");
  EXPECT_EQ(res.applied[3].first, "fuse-reducescatters");
  EXPECT_GT(res.total_rewrites(), 0);
  EXPECT_TRUE(plan::PlanValidator{}.Check(p).ok());
}

// ------------------------------------------------------ acceptance: latency

TEST(PassAcceptanceTest, FusionAndReorderingReduceExposedCommTime) {
  // Many small units: per-collective launch latency dominates, the regime
  // Fig 2(b) motivates batching for.
  simfsdp::TransformerShape shape;
  shape.name = "many-small";
  shape.hidden = 256;
  shape.layers = 32;
  shape.heads = 4;
  shape.seq = 64;
  shape.vocab = 2048;
  const simfsdp::Workload w = simfsdp::MakeTransformer(shape);
  const sim::Topology topo{2, 8};
  const sim::SimConstants c;
  simfsdp::FsdpSimConfig cfg;
  cfg.batch_per_gpu = 2;
  cfg.limit_all_gathers = 0;  // gates pin unshard order; give passes room

  simfsdp::FsdpSimulator base(w, topo, c, cfg);
  const simfsdp::SimMetrics m_base = base.Run();
  ASSERT_FALSE(m_base.oom);

  plan::StepPlan optimized = base.plan();
  plan::PassOptions opt = simfsdp::MakePassOptions(w, topo, cfg);
  opt.fuse_below_bytes = 8 << 20;
  opt.max_hoist_computes = 4;
  opt.max_sink_computes = 4;
  const plan::PassResult res =
      plan::PassManager::Default(opt).Run(optimized);
  EXPECT_GT(res.total_rewrites(), 0);

  const simfsdp::SimMetrics m_opt =
      simfsdp::FsdpSimulator(w, topo, c, cfg, optimized).Run();
  ASSERT_FALSE(m_opt.oom);
  EXPECT_LT(m_opt.exposed_comm_us, m_base.exposed_comm_us)
      << "optimized plan must expose less communication";
  EXPECT_LT(m_opt.iter_time_us, m_base.iter_time_us);
}

// ------------------------------------------------------- acceptance: memory

TEST(ArenaPlanTest, AssignmentsNeverOverlapWhileBothLive) {
  const simfsdp::Workload w = simfsdp::T5_611M();
  const sim::Topology topo{1, 8};
  simfsdp::FsdpSimConfig cfg;
  cfg.batch_per_gpu = 2;
  const plan::StepPlan p = simfsdp::BuildSimStepPlan(w, topo, cfg);
  const plan::ArenaPlan layout = plan::BuildArenaPlan(
      p, simfsdp::MakeMemoryPlanOptions(w, topo, sim::SimConstants{}, cfg));
  ASSERT_FALSE(layout.assignments.empty());
  for (size_t i = 0; i < layout.assignments.size(); ++i) {
    const plan::ArenaAssignment& a = layout.assignments[i];
    EXPECT_GE(a.offset, layout.persistent_bytes);
    EXPECT_LE(a.offset + a.bytes, layout.total_bytes);
    for (size_t j = i + 1; j < layout.assignments.size(); ++j) {
      const plan::ArenaAssignment& b = layout.assignments[j];
      const bool time_overlap =
          a.open_at <= b.close_at && b.open_at <= a.close_at;
      const bool space_overlap =
          a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
      EXPECT_FALSE(time_overlap && space_overlap)
          << plan::BufKindName(a.kind) << a.unit << " and "
          << plan::BufKindName(b.kind) << b.unit << " overlap";
    }
  }
}

TEST(ArenaPlanTest, StaticPlanPeakWithinCachingAllocatorPeak) {
  const simfsdp::Workload w = simfsdp::T5_611M();
  const sim::Topology topo{1, 8};
  const sim::SimConstants c;
  simfsdp::FsdpSimConfig cfg;
  cfg.batch_per_gpu = 2;

  const simfsdp::SimMetrics m_cache =
      simfsdp::FsdpSimulator(w, topo, c, cfg).Run();
  ASSERT_FALSE(m_cache.oom);

  simfsdp::FsdpSimConfig cfg_arena = cfg;
  cfg_arena.static_memory_plan = true;
  const simfsdp::SimMetrics m_arena =
      simfsdp::FsdpSimulator(w, topo, c, cfg_arena).Run();
  ASSERT_FALSE(m_arena.oom);

  // The compiled arena reserves once, below the free-list allocator's
  // fragmented peak, and the bump path never retries.
  EXPECT_LE(m_arena.peak_reserved, m_cache.peak_reserved);
  EXPECT_EQ(m_arena.num_alloc_retries, 0);
  EXPECT_GT(m_arena.peak_allocated, 0);
  // Same schedule, minus cudaMalloc/retry stalls on the CPU thread.
  EXPECT_LE(m_arena.iter_time_us, m_cache.iter_time_us * 1.001);
}

}  // namespace
}  // namespace fsdp
