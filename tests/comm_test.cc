// Collective-communication tests: correctness of every collective against a
// naive reference, subgroup (DeviceMesh) structure, uneven all-gather, and
// byte accounting — across several world sizes via parameterized suites.
#include <numeric>

#include <gtest/gtest.h>

#include "comm/process_group.h"
#include "common/threading.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, AllGatherBase) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    const int64_t n = 5;
    std::vector<float> src(n), dst(static_cast<size_t>(w * n));
    for (int64_t i = 0; i < n; ++i) src[i] = 100.f * r + i;
    pg.AllGatherBase(dst.data(), src.data(), n);
    for (int k = 0; k < w; ++k) {
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst[k * n + i], 100.f * k + i) << "rank " << r;
      }
    }
    ASSERT_EQ(pg.stats().allgather_ops, 1);
    ASSERT_EQ(pg.stats().allgather_bytes, (w - 1) * n * 4);
  });
}

TEST_P(CollectiveTest, AllGatherListVariant) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    const int64_t n = 3;
    std::vector<float> src(n, static_cast<float>(r));
    std::vector<std::vector<float>> outs(w, std::vector<float>(n));
    std::vector<float*> ptrs;
    for (auto& o : outs) ptrs.push_back(o.data());
    pg.AllGather(ptrs, src.data(), n);
    for (int k = 0; k < w; ++k) {
      for (float v : outs[k]) ASSERT_EQ(v, static_cast<float>(k));
    }
  });
}

TEST_P(CollectiveTest, AllGatherUneven) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    // Rank k contributes k+1 elements with value k.
    std::vector<int64_t> counts(w);
    for (int k = 0; k < w; ++k) counts[k] = k + 1;
    std::vector<float> src(static_cast<size_t>(r + 1),
                           static_cast<float>(r));
    std::vector<std::vector<float>> outs;
    std::vector<float*> ptrs;
    for (int k = 0; k < w; ++k) {
      outs.emplace_back(static_cast<size_t>(counts[k]), -1.f);
    }
    for (auto& o : outs) ptrs.push_back(o.data());
    pg.AllGatherUneven(ptrs, src.data(), counts);
    for (int k = 0; k < w; ++k) {
      for (float v : outs[k]) ASSERT_EQ(v, static_cast<float>(k));
    }
  });
}

TEST_P(CollectiveTest, ReduceScatterSum) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    const int64_t n = 4;
    // src[k*n + i] = r on every rank -> each chunk reduces to w*r summed over
    // ranks... use position-dependent values for a stronger check.
    std::vector<float> src(static_cast<size_t>(w * n));
    for (int64_t i = 0; i < w * n; ++i) {
      src[static_cast<size_t>(i)] = static_cast<float>(r * 1000 + i);
    }
    std::vector<float> dst(n);
    pg.ReduceScatter(dst.data(), src.data(), n);
    // sum over ranks of (k*1000 + (r*n + i)).
    const float rank_sum = 1000.f * (w * (w - 1) / 2);
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(dst[i], rank_sum + w * (r * n + i)) << "rank " << r;
    }
  });
}

TEST_P(CollectiveTest, AllReduceSumAvgMax) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> buf = {static_cast<float>(r), 1.f,
                              static_cast<float>(-r)};
    comm::CollectiveOptions sum_opts;
    sum_opts.op = comm::ReduceOp::kSum;
    pg.AllReduce(buf.data(), 3, sum_opts);
    ASSERT_EQ(buf[0], static_cast<float>(w * (w - 1) / 2));
    ASSERT_EQ(buf[1], static_cast<float>(w));

    std::vector<float> avg = {static_cast<float>(2 * r)};
    comm::CollectiveOptions avg_opts;
    avg_opts.op = comm::ReduceOp::kAvg;
    pg.AllReduce(avg.data(), 1, avg_opts);
    ASSERT_FLOAT_EQ(avg[0], static_cast<float>(w - 1));

    std::vector<float> mx = {static_cast<float>(r == 0 ? 42 : -r)};
    comm::CollectiveOptions max_opts;
    max_opts.op = comm::ReduceOp::kMax;
    pg.AllReduce(mx.data(), 1, max_opts);
    ASSERT_EQ(mx[0], 42.f);
  });
}

TEST_P(CollectiveTest, Broadcast) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  for (int root = 0; root < w; ++root) {
    RunOnRanks(w, [&](int r) {
      comm::ProcessGroup pg(comm, r);
      std::vector<float> buf = {static_cast<float>(r), static_cast<float>(r)};
      pg.Broadcast(buf.data(), 2, root);
      ASSERT_EQ(buf[0], static_cast<float>(root));
    });
  }
}

TEST_P(CollectiveTest, AllToAllTransposesChunks) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    const int64_t chunk = 3;
    // src chunk j on rank r = value r*100 + j.
    std::vector<float> src(static_cast<size_t>(w * chunk));
    for (int j = 0; j < w; ++j) {
      for (int64_t i = 0; i < chunk; ++i) {
        src[j * chunk + i] = static_cast<float>(r * 100 + j);
      }
    }
    std::vector<float> dst(static_cast<size_t>(w * chunk), -1.f);
    pg.AllToAll(dst.data(), src.data(), chunk);
    // dst chunk k must be rank k's chunk r: value k*100 + r.
    for (int k = 0; k < w; ++k) {
      for (int64_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(dst[k * chunk + i], static_cast<float>(k * 100 + r))
            << "rank " << r;
      }
    }
  });
}

TEST_P(CollectiveTest, BackToBackCollectivesDoNotInterfere) {
  const int w = GetParam();
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<float> buf = {static_cast<float>(r + iter)};
      pg.AllReduce(buf.data(), 1);
      ASSERT_EQ(buf[0], static_cast<float>(w * (w - 1) / 2 + w * iter));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(CollectiveDtype, LowPrecisionReductionQuantizes) {
  // BF16 reduction: adding 1.0 and 2^-9 in bf16 loses the small addend.
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    std::vector<float> src = {r == 0 ? 1.f : 0.001953125f, 0.f};  // 2^-9
    std::vector<float> dst(1);
    comm::CollectiveOptions opts;
    opts.comm_dtype = DType::kBF16;
    pg.ReduceScatter(dst.data(), src.data(), 1, opts);
    ASSERT_EQ(dst[0], r == 0 ? 1.f : 0.f);  // rank 0's chunk lost the addend
  });
}

TEST(DeviceMeshTest, GroupStructure) {
  comm::DeviceMesh mesh(8, 4);
  EXPECT_EQ(mesh.num_shard_groups(), 2);
  RunOnRanks(8, [&](int r) {
    auto shard = mesh.ShardGroup(r);
    auto repl = mesh.ReplicateGroup(r);
    ASSERT_EQ(shard.size(), 4);
    ASSERT_EQ(repl.size(), 2);
    ASSERT_EQ(shard.rank(), r % 4);
    ASSERT_EQ(repl.rank(), r / 4);
    // Collective inside the shard group only mixes the 4 local ranks.
    std::vector<float> buf = {static_cast<float>(r)};
    shard.AllReduce(buf.data(), 1);
    const int base = (r / 4) * 4;
    ASSERT_EQ(buf[0], static_cast<float>(base * 4 + 6));  // sum of 4 ranks
  });
}

TEST(DeviceMeshTest, HybridEqualsGlobalReduction) {
  // Paper Eq. 1: reduce-scatter over shard groups + all-reduce over replicate
  // groups == global reduction.
  const int w = 8, f = 4;
  comm::DeviceMesh mesh(w, f);
  comm::DeviceMesh flat_mesh(w, w);
  RunOnRanks(w, [&](int r) {
    const int64_t n_per = 2;  // per-rank chunk under F-sharding
    std::vector<float> grad(static_cast<size_t>(f * n_per));
    for (size_t i = 0; i < grad.size(); ++i) {
      grad[i] = static_cast<float>((r + 1) * (i + 1));
    }
    // Hybrid path.
    auto shard = mesh.ShardGroup(r);
    auto repl = mesh.ReplicateGroup(r);
    std::vector<float> mine(n_per);
    shard.ReduceScatter(mine.data(), grad.data(), n_per);
    repl.AllReduce(mine.data(), n_per);
    // Global reference: sum over all ranks of grad[k][local chunk].
    const int local = r % f;
    for (int64_t i = 0; i < n_per; ++i) {
      float expect = 0;
      for (int k = 0; k < w; ++k) {
        expect += static_cast<float>((k + 1) * (local * n_per + i + 1));
      }
      ASSERT_EQ(mine[i], expect) << "rank " << r;
    }
  });
}

TEST(DeviceMeshTest, InvalidFactorsDie) {
  EXPECT_DEATH(comm::DeviceMesh(8, 3), "divide");
  EXPECT_DEATH(comm::DeviceMesh(8, 9), "out of");
}

TEST(CommStats, TracksBytesAndOps) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor t = Tensor::Ones({8});
    pg.AllReduce(t);
    Tensor dst = Tensor::Empty({2});
    Tensor src = Tensor::Ones({8});
    pg.ReduceScatter(dst, src);
    ASSERT_EQ(pg.stats().allreduce_ops, 1);
    ASSERT_EQ(pg.stats().reducescatter_ops, 1);
    ASSERT_EQ(pg.stats().reducescatter_bytes, 3 * 2 * 4);
    pg.ResetStats();
    ASSERT_EQ(pg.stats().allreduce_ops, 0);
  });
}

}  // namespace
}  // namespace fsdp
