// DistributedDataParallel tests: equivalence with local training, bucketing,
// no_sync accumulation, and unused-parameter semantics.
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "ddp/ddp.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::ExpectAllClose;

nn::ModulePtr MakeModel(uint64_t seed) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank) {
  return ops::IndexTensor({(rank * 3 + 1) % 13, (rank * 5 + 2) % 13,
                           (rank * 7 + 3) % 13, (rank + 4) % 13},
                          {1, 4});
}

Tensor RankTargets(int rank) {
  return ops::IndexTensor({(rank + 5) % 13, (rank + 6) % 13, (rank + 7) % 13,
                           (rank + 8) % 13},
                          {4});
}

/// Local reference: gradient of the mean-over-ranks loss.
std::vector<std::pair<std::string, Tensor>> LocalReferenceGrads(
    int world, int steps, std::vector<Tensor>* final_params) {
  auto model = MakeModel(42);
  std::vector<Tensor> params;
  for (Tensor* slot : model->ParameterSlots()) params.push_back(*slot);
  optim::SGD sgd(params, 0.1f);
  for (int s = 0; s < steps; ++s) {
    sgd.ZeroGrad();
    for (int r = 0; r < world; ++r) {
      Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / world));
    }
    if (s + 1 < steps) sgd.Step();
  }
  std::vector<std::pair<std::string, Tensor>> grads;
  for (auto& [name, slot] : model->NamedParameters()) {
    grads.emplace_back(name, slot->grad());
  }
  if (final_params) {
    for (Tensor* slot : model->ParameterSlots()) {
      final_params->push_back(slot->Clone());
    }
  }
  return grads;
}

class DdpWorldTest : public ::testing::TestWithParam<int> {};

TEST_P(DdpWorldTest, GradientsMatchLocalReference) {
  const int w = GetParam();
  auto ref = LocalReferenceGrads(w, 1, nullptr);
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    ddp::DistributedDataParallel wrapped(model, comm::ProcessGroup(comm, r),
                                         {.bucket_cap_numel = 200});
    Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    auto named = model->NamedParameters();
    ASSERT_EQ(named.size(), ref.size());
    for (size_t i = 0; i < named.size(); ++i) {
      Tensor g = named[i].second->grad();
      ASSERT_TRUE(g.defined()) << named[i].first;
      ASSERT_TRUE(g.AllClose(ref[i].second, 1e-4f, 1e-5f))
          << "rank " << r << " param " << named[i].first;
    }
  });
}

TEST_P(DdpWorldTest, MultiStepTrainingMatchesLocal) {
  const int w = GetParam();
  std::vector<Tensor> ref_params;
  LocalReferenceGrads(w, 4, &ref_params);
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    ddp::DistributedDataParallel wrapped(model, comm::ProcessGroup(comm, r));
    std::vector<Tensor> params;
    for (Tensor* slot : model->ParameterSlots()) params.push_back(*slot);
    optim::SGD sgd(params, 0.1f);
    for (int s = 0; s < 3; ++s) {
      sgd.ZeroGrad();
      Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      sgd.Step();
    }
    auto slots = model->ParameterSlots();
    for (size_t i = 0; i < slots.size(); ++i) {
      ASSERT_TRUE(slots[i]->AllClose(ref_params[i], 1e-4f, 1e-5f))
          << "rank " << r << " param " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DdpWorldTest, ::testing::Values(1, 2, 4));

TEST(DdpTest, BroadcastsInitialParameters) {
  const int w = 3;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(100 + r);  // deliberately different seeds
    ddp::DistributedDataParallel wrapped(model, comm::ProcessGroup(comm, r));
    // All ranks must now hold rank 0's values: checksum agreement via
    // AllReduce of (local - mean) would be overkill; gather param 0.
    Tensor p0 = *model->ParameterSlots()[0];
    Tensor all = Tensor::Empty({w * p0.numel()});
    comm::ProcessGroup pg(comm, r);
    pg.AllGatherBase(all, p0.Flatten());
    for (int k = 1; k < w; ++k) {
      for (int64_t i = 0; i < p0.numel(); ++i) {
        ASSERT_EQ(all.data()[k * p0.numel() + i], all.data()[i]);
      }
    }
  });
}

TEST(DdpTest, BucketingRespectsCapacity) {
  auto comm = std::make_shared<comm::Communicator>(1);
  auto model = MakeModel(1);
  const int64_t total = model->NumParameters();
  ddp::DistributedDataParallel small(model, comm::ProcessGroup(comm, 0),
                                     {.bucket_cap_numel = 100});
  EXPECT_GT(small.num_buckets(), 3);
  auto model2 = MakeModel(1);
  ddp::DistributedDataParallel big(model2, comm::ProcessGroup(comm, 0),
                                   {.bucket_cap_numel = total * 2});
  EXPECT_EQ(big.num_buckets(), 1);
}

TEST(DdpTest, NoSyncAccumulatesWithoutCommunication) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(7);
    comm::ProcessGroup pg(comm, r);
    ddp::DistributedDataParallel wrapped(model, pg);
    const int64_t reduces_before = 0;
    {
      ddp::NoSyncGuard guard(wrapped);
      Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
    }
    // Local (unsynced) gradients differ across ranks; verify no AllReduce ran
    // beyond construction broadcasts.
    ASSERT_EQ(pg.stats().allreduce_ops, reduces_before);
    // Sync iteration reduces the accumulated gradient.
    Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    ASSERT_GT(pg.stats().allreduce_ops, 0);
  });
}

TEST(DdpTest, NoSyncPlusSyncMatchesAccumulatedLocal) {
  const int w = 2;
  // Local reference: two accumulation rounds of the mean-over-ranks loss.
  auto ref_model = MakeModel(21);
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < w; ++r) {
      Tensor loss = ops::CrossEntropy((*ref_model)(RankTokens(r + 2 * round)),
                                      RankTargets(r));
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / w));
    }
  }
  std::vector<Tensor> ref_grads;
  for (Tensor* slot : ref_model->ParameterSlots()) {
    ref_grads.push_back(slot->grad());
  }

  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(21);
    ddp::DistributedDataParallel wrapped(model, comm::ProcessGroup(comm, r));
    {
      ddp::NoSyncGuard guard(wrapped);
      Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
    }
    Tensor loss = ops::CrossEntropy(wrapped.Forward(RankTokens(r + 2)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    auto slots = model->ParameterSlots();
    for (size_t i = 0; i < slots.size(); ++i) {
      ASSERT_TRUE(slots[i]->grad().AllClose(ref_grads[i], 1e-4f, 1e-5f))
          << "rank " << r << " param " << i;
    }
  });
}

TEST(DdpTest, RefusesFakeDeviceModel) {
  nn::InitCtx fake(Device::kFake, 1);
  nn::TransformerConfig cfg;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  auto model = std::make_shared<nn::TransformerModel>(cfg, fake);
  auto comm = std::make_shared<comm::Communicator>(1);
  EXPECT_DEATH(ddp::DistributedDataParallel(model,
                                            comm::ProcessGroup(comm, 0)),
               "materialized");
}

}  // namespace
}  // namespace fsdp
