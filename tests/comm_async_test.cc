// Async collective runtime tests (the comm-worker "NCCL stream" analogue):
// Work-handle lifecycle and timestamps, FIFO issue ordering, genuine
// communication/compute overlap under injected link latency, the FSDP rate
// limiter with *genuinely pending* (un-waited) handles, FsdpOptions
// validation, and multi-rank multi-iteration stress for TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "autograd/engine.h"
#include "comm/process_group.h"
#include "common/threading.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using core::FsdpOptions;
using core::FullyShardedDataParallel;
using core::ShardingStrategy;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ------------------------------------------------------- Work handle basics

TEST(WorkHandle, DefaultConstructedIsComplete) {
  comm::Work w;
  EXPECT_TRUE(w.Completed());
  w.Wait();  // must not hang
}

TEST(WorkHandle, SyncCallReturnsCompletedWork) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor t = Tensor::Ones({4});
    comm::Work work = pg.AllReduce(t);  // default opts: synchronous
    EXPECT_TRUE(work.Completed());
    EXPECT_GE(work.complete_us(), work.issue_us());
    for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 2.f);
  });
}

TEST(WorkHandle, AsyncWorkPendingUntilWait) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  // 50 ms of injected link latency: the collective cannot complete before
  // the issuing thread observes the handle, so "pending right after issue"
  // is deterministic, not a scheduler race.
  comm->SetInjectedLatency(/*base_us=*/50'000);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor t = Tensor::Full({4}, static_cast<float>(r + 1));
    comm::CollectiveOptions opts;
    opts.async = true;
    comm::Work work = pg.AllReduce(t, opts);
    EXPECT_FALSE(work.Completed()) << "50ms latency still pending at issue";
    work.Wait();
    EXPECT_TRUE(work.Completed());
    // Timestamps: issue -> start -> complete, spanning the injected latency.
    EXPECT_GE(work.start_us(), work.issue_us());
    EXPECT_GE(work.complete_us(), work.start_us());
    EXPECT_GE(work.complete_us() - work.issue_us(), 50'000.0);
    for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.data()[i], 3.f);  // 1 + 2
  });
}

TEST(WorkHandle, FifoOrderingWithinOneRank) {
  // Ops enqueue FIFO per rank worker: waiting a later handle implies every
  // earlier handle on the same queue already completed.
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetInjectedLatency(/*base_us=*/2'000);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    comm::CollectiveOptions opts;
    opts.async = true;
    Tensor a = Tensor::Full({2}, static_cast<float>(r));
    Tensor b = Tensor::Full({2}, static_cast<float>(10 * r));
    comm::Work wa = pg.AllReduce(a, opts);
    comm::Work wb = pg.AllReduce(b, opts);
    wb.Wait();
    EXPECT_TRUE(wa.Completed()) << "FIFO: waiting b implies a done";
    EXPECT_EQ(a.data()[0], 1.f);   // 0 + 1
    EXPECT_EQ(b.data()[0], 10.f);  // 0 + 10
  });
}

TEST(WorkHandle, KeepaliveOutlivesCallerScope) {
  // The issuing scope drops its tensors right after issue; the Work keepalive
  // must hold the buffers until the collective ran. TSan/ASan guard this.
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetInjectedLatency(/*base_us=*/1'000);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    comm::Work work;
    Tensor dst = Tensor::Empty({static_cast<int64_t>(w)});
    {
      Tensor src = Tensor::Full({1}, static_cast<float>(r + 1));
      comm::CollectiveOptions opts;
      opts.async = true;
      work = pg.AllGatherBase(dst, src, opts);
      // src goes out of scope here while the gather is still pending.
    }
    work.Wait();
    for (int k = 0; k < w; ++k) EXPECT_EQ(dst.data()[k], k + 1.f);
  });
}

// ----------------------------------------------------------- overlap timing

TEST(AsyncOverlap, IssueComputeWaitBeatsSynchronous) {
  // With L ms of injected comm latency and C ms of compute, sync costs
  // ~L + C while async issue -> compute -> wait costs ~max(L, C). Generous
  // margins keep this robust on loaded CI machines.
  const int w = 2;
  const double kLatencyMs = 30.0, kComputeMs = 30.0;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetInjectedLatency(/*base_us=*/kLatencyMs * 1000);
  std::vector<double> sync_ms(w), async_ms(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    auto compute = [&] {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          kComputeMs));
    };
    Tensor t = Tensor::Ones({16});
    double t0 = NowMs();
    pg.AllReduce(t);  // synchronous
    compute();
    sync_ms[r] = NowMs() - t0;

    Tensor u = Tensor::Ones({16});
    comm::CollectiveOptions opts;
    opts.async = true;
    t0 = NowMs();
    comm::Work work = pg.AllReduce(u, opts);
    compute();
    work.Wait();
    async_ms[r] = NowMs() - t0;
  });
  for (int r = 0; r < w; ++r) {
    EXPECT_LT(async_ms[r], 0.8 * sync_ms[r])
        << "rank " << r << ": async " << async_ms[r] << "ms vs sync "
        << sync_ms[r] << "ms";
  }
}

// ------------------------------------------------- rate limiter, genuinely

Tensor StressTokens(int rank, int step) {
  return ops::IndexTensor({(rank * 3 + step + 1) % 13, (rank * 5 + 2) % 13,
                           (step * 7 + 3) % 13, (rank + step + 4) % 13},
                          {1, 4});
}

Tensor StressTargets(int rank, int step) {
  return ops::IndexTensor({(rank + step + 5) % 13, (rank + 6) % 13,
                           (step + 7) % 13, (rank + 8) % 13},
                          {4});
}

nn::ModulePtr StressModel(int layers, uint64_t seed = 7) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = layers;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

TEST(RateLimiterTest, BoundsGenuinelyPendingWork) {
  // The acceptance check for the async runtime: with injected latency the
  // prefetched AllGathers are *really* un-waited when the limiter counts
  // them — max_inflight must hit the cap exactly, and ConsumeUnshard must
  // observe at least one still-pending handle (a real wait, not a no-op).
  const int w = 2, limit = 2;
  comm::DeviceMesh mesh(w, w);
  mesh.SetInjectedLatency(/*base_us=*/3'000);
  RunOnRanks(w, [&](int r) {
    FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    opts.forward_prefetch = true;
    opts.backward_prefetch = true;
    opts.limit_all_gathers = limit;
    FullyShardedDataParallel fsdp(StressModel(/*layers=*/4), mesh, r, opts);
    for (int s = 0; s < 3; ++s) {
      Tensor loss = ops::CrossEntropy(fsdp.Forward(StressTokens(r, s)),
                                      StressTargets(r, s));
      autograd::RunBackward(loss);
    }
    ASSERT_EQ(fsdp.state().max_inflight_unshards(), limit);
    ASSERT_GT(fsdp.state().waits_on_pending(), 0)
        << "injected latency must make some AllGather genuinely pending";
  });
}

// ---------------------------------------------------- FsdpOptions::Validate

TEST(FsdpOptionsValidate, AcceptsConsistentConfigs) {
  FsdpOptions opts;
  EXPECT_TRUE(opts.Validate(/*world=*/8, /*factor=*/8).ok());
  opts.strategy = ShardingStrategy::kNoShard;
  EXPECT_TRUE(opts.Validate(8, 1).ok());
  opts.strategy = ShardingStrategy::kHybridShard;
  EXPECT_TRUE(opts.Validate(8, 4).ok());
  opts.limit_all_gathers = 0;  // 0 disables the limiter
  EXPECT_TRUE(opts.Validate(8, 4).ok());
}

TEST(FsdpOptionsValidate, RejectsStrategyMeshMismatch) {
  FsdpOptions opts;  // FULL_SHARD
  Status s = opts.Validate(/*world=*/8, /*factor=*/4);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("sharding factor == world size"),
            std::string::npos);

  opts.strategy = ShardingStrategy::kNoShard;
  s = opts.Validate(8, 8);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("NO_SHARD requires sharding factor 1"),
            std::string::npos);

  opts.strategy = ShardingStrategy::kHybridShard;
  s = opts.Validate(8, 9);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("hybrid sharding factor out of range"),
            std::string::npos);
}

TEST(FsdpOptionsValidate, RejectsBadLimiterAndDtypes) {
  FsdpOptions opts;
  opts.limit_all_gathers = -1;
  Status s = opts.Validate(8, 8);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("limit_all_gathers must be >= 0"),
            std::string::npos);

  opts.limit_all_gathers = 4096;
  s = opts.Validate(8, 8);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("max 1024"), std::string::npos);

  opts.limit_all_gathers = 2;
  opts.mixed_precision.reduce_dtype = DType::kI64;
  s = opts.Validate(8, 8);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("floating point"), std::string::npos);
}

TEST(FsdpOptionsValidate, ConstructorAbortsOnInvalidOptions) {
  comm::DeviceMesh mesh(2, 2);
  FsdpOptions opts;
  opts.limit_all_gathers = -3;
  EXPECT_DEATH(
      { FullyShardedDataParallel fsdp(StressModel(1), mesh, 0, opts); },
      "limit_all_gathers");
}

// -------------------------------------------------------------- TSan stress

TEST(AsyncStress, ManyRanksManyIterationsRawCollectives) {
  // Interleaved async collectives from every rank across many iterations:
  // the TSan target for the worker runtime itself (queue handoff, Work
  // completion, keepalive release).
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetInjectedLatency(/*base_us=*/100);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    comm::CollectiveOptions async_opts;
    async_opts.async = true;
    for (int iter = 0; iter < 25; ++iter) {
      Tensor a = Tensor::Full({8}, static_cast<float>(r + iter));
      Tensor gathered = Tensor::Empty({4 * w});
      Tensor src = Tensor::Full({4}, static_cast<float>(r));
      comm::Work wa = pg.AllReduce(a, async_opts);
      comm::Work wg = pg.AllGatherBase(gathered, src, async_opts);
      Tensor scattered = Tensor::Empty({2});
      Tensor rs_src = Tensor::Ones({static_cast<int64_t>(2 * w)});
      comm::Work ws = pg.ReduceScatter(scattered, rs_src, async_opts);
      ws.Wait();
      wg.Wait();
      wa.Wait();
      ASSERT_EQ(a.data()[0], static_cast<float>(w * iter + w * (w - 1) / 2));
      for (int k = 0; k < w; ++k) {
        ASSERT_EQ(gathered.data()[4 * k], static_cast<float>(k));
      }
      ASSERT_EQ(scattered.data()[0], static_cast<float>(w));
      pg.Barrier();  // marker op must respect FIFO vs pending async ops
    }
  });
}

TEST(AsyncStress, FsdpTrainingLoopUnderLatency) {
  // End-to-end stress: prefetch + rate limiter + async gradient reduction
  // over multiple optimizer steps and ranks. Run under FSDP_SANITIZE=thread
  // (ctest -L tsan) to validate the runtime is race-free.
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  mesh.SetInjectedLatency(/*base_us=*/200);
  RunOnRanks(w, [&](int r) {
    FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    opts.forward_prefetch = true;
    opts.backward_prefetch = true;
    opts.limit_all_gathers = 2;
    FullyShardedDataParallel fsdp(StressModel(/*layers=*/3), mesh, r, opts);
    optim::Adam adam(fsdp.Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 8; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(fsdp.Forward(StressTokens(r, s)),
                                      StressTargets(r, s));
      autograd::RunBackward(loss);
      adam.Step();
      ASSERT_TRUE(std::isfinite(loss.item())) << "step " << s;
    }
  });
}

TEST(AsyncStress, DdpBucketedAsyncAllReduce) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetInjectedLatency(/*base_us=*/200);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    ddp::DdpOptions opts;
    opts.bucket_cap_numel = 64;  // force several buckets
    ddp::DistributedDataParallel ddp(StressModel(/*layers=*/2), pg, opts);
    ASSERT_GT(ddp.num_buckets(), 1);
    std::vector<Tensor> params;
    for (Tensor* slot : ddp.module().ParameterSlots()) params.push_back(*slot);
    optim::SGD sgd(params, /*lr=*/1e-2f);
    for (int s = 0; s < 6; ++s) {
      sgd.ZeroGrad();
      Tensor loss = ops::CrossEntropy(ddp.Forward(StressTokens(r, s)),
                                      StressTargets(r, s));
      autograd::RunBackward(loss);
      sgd.Step();
      ASSERT_TRUE(std::isfinite(loss.item())) << "step " << s;
    }
  });
}

}  // namespace
}  // namespace fsdp
