// On-disk checkpoint serialization and ignored-modules tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "core/optim_state.h"
#include "core/serialize.h"
#include "elastic/sharded_ckpt.h"
#include "nn/dhen.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripTensorsAndOptimState) {
  core::Checkpoint ckpt;
  Rng rng(1, 0);
  ckpt.state_dict.emplace_back("a.weight", Tensor::Randn({3, 4}, rng));
  ckpt.state_dict.emplace_back("b.bias",
                               Tensor::Randn({7}, rng).CastTo(DType::kBF16));
  core::FullOptimEntry e;
  e.fqn = "a.weight";
  e.step = 42;
  e.exp_avg = Tensor::Randn({3, 4}, rng);
  e.exp_avg_sq = Tensor::Randn({3, 4}, rng);
  ckpt.optim_state.push_back(e);

  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(core::SaveCheckpoint(path, ckpt).ok());
  auto loaded = core::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->state_dict.size(), 2u);
  EXPECT_EQ(loaded->state_dict[0].first, "a.weight");
  EXPECT_TRUE(
      loaded->state_dict[0].second.AllClose(ckpt.state_dict[0].second, 0, 0));
  EXPECT_EQ(loaded->state_dict[1].second.dtype(), DType::kBF16);
  EXPECT_EQ(loaded->state_dict[1].second.shape(), (Shape{7}));

  ASSERT_EQ(loaded->optim_state.size(), 1u);
  EXPECT_EQ(loaded->optim_state[0].step, 42);
  EXPECT_TRUE(loaded->optim_state[0].exp_avg_sq.AllClose(e.exp_avg_sq, 0, 0));
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsGarbageAndTruncation) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("not a checkpoint", 1, 16, f);
  std::fclose(f);
  EXPECT_FALSE(core::LoadCheckpoint(path).ok());
  EXPECT_FALSE(core::LoadCheckpoint(TempPath("missing.ckpt")).ok());

  // Truncate a valid checkpoint.
  core::Checkpoint ckpt;
  ckpt.state_dict.emplace_back("x", Tensor::Ones({64}));
  ASSERT_TRUE(core::SaveCheckpoint(path, ckpt).ok());
  f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  EXPECT_FALSE(core::LoadCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TrainSaveRestartResumeThroughDisk) {
  // The full loop across a simulated process restart: train at W=2, save to
  // a real file, "restart" with fresh objects, load, resume; match local.
  const int w = 2;
  const std::string path = TempPath("resume.ckpt");

  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  auto tokens_for = [](int r) {
    return ops::IndexTensor({(r * 3 + 1) % 13, (r * 5 + 2) % 13,
                             (r + 3) % 13, (r + 4) % 13},
                            {1, 4});
  };
  Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});

  // Local reference: 4 steps total.
  std::map<std::string, Tensor> ref;
  {
    nn::InitCtx ctx(Device::kCpu, 42);
    nn::TransformerModel model(cfg, ctx);
    std::vector<Tensor> params;
    for (Tensor* s : model.ParameterSlots()) params.push_back(*s);
    optim::Adam adam(params, {.lr = 1e-2f});
    for (int s = 0; s < 4; ++s) {
      adam.ZeroGrad();
      for (int r = 0; r < w; ++r) {
        Tensor loss = ops::CrossEntropy(model(tokens_for(r)), targets);
        autograd::RunBackward(ops::ScalarMul(loss, 1.f / w));
      }
      adam.Step();
    }
    for (auto& [n, s] : model.NamedParameters()) ref[n] = s->Clone();
  }

  comm::DeviceMesh mesh(w, w);
  core::FsdpOptions opts;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});

  // Phase 1: 2 steps, save.
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 42);
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    auto state = core::FullyShard(model, mesh, r, opts);
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 2; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy((*model)(tokens_for(r)), targets);
      autograd::RunBackward(loss);
      adam.Step();
    }
    core::Checkpoint ckpt;
    ckpt.state_dict = state->FullStateDict();
    ckpt.optim_state = core::GatherFullOptimState(*state, adam);
    if (r == 0) ASSERT_TRUE(core::SaveCheckpoint(path, ckpt).ok());
  });

  // Phase 2: fresh everything, load from disk, 2 more steps.
  auto loaded = core::LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 777);  // different init, fully overwritten
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    auto state = core::FullyShard(model, mesh, r, opts);
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    state->LoadFullStateDict(loaded->state_dict);
    core::LoadFullOptimState(*state, adam, loaded->optim_state);
    for (int s = 0; s < 2; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy((*model)(tokens_for(r)), targets);
      autograd::RunBackward(loss);
      adam.Step();
    }
    for (auto& [fqn, value] : state->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at(fqn), 5e-4f, 1e-4f))
          << "rank " << r << " " << fqn;
    }
  });
  std::remove(path.c_str());
}

// --------------------------------------------------------- ignored modules

/// DHEN-style split: sparse tables FSDP must ignore; dense tower it shards.
struct DhenFull : nn::Module {
  std::shared_ptr<nn::DhenSparseArch> sparse;
  std::shared_ptr<nn::DhenDenseTower> dense;
  explicit DhenFull(nn::InitCtx& ctx) {
    sparse = std::make_shared<nn::DhenSparseArch>(std::vector<int64_t>{11, 7},
                                                  4, ctx);
    nn::DhenConfig cfg;
    cfg.input_dim = sparse->output_dim();
    cfg.dim = 8;
    cfg.hidden = 16;
    cfg.num_layers = 2;
    dense = std::make_shared<nn::DhenDenseTower>(cfg, ctx);
    RegisterModule("sparse", sparse);
    RegisterModule("dense", dense);
  }
  Tensor Forward(const Tensor& indices) override {
    return (*dense)((*sparse)(indices));
  }
  std::string TypeName() const override { return "DhenFull"; }
};

TEST(IgnoredModulesTest, SparseTablesStayLocalDenseIsSharded) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 21);
    auto model = std::make_shared<DhenFull>(ctx);
    // Remember the sparse table impls to prove they are untouched.
    std::vector<const TensorImpl*> sparse_impls;
    for (auto& [n, slot] : model->sparse->NamedParameters()) {
      sparse_impls.push_back(slot->impl().get());
    }

    core::FsdpOptions opts;
    opts.ignore_policy = core::ModuleTypePolicy({"DhenSparseArch"});
    auto state = core::FullyShard(model, mesh, r, opts);

    // No unit contains sparse parameters.
    for (int u = 0; u < state->num_units(); ++u) {
      for (const auto& p : state->unit_handle(u).params()) {
        ASSERT_EQ(p.fqn.find("sparse."), std::string::npos) << p.fqn;
      }
    }
    // Sparse slots still hold their ORIGINAL tensors (not views).
    size_t i = 0;
    for (auto& [n, slot] : model->sparse->NamedParameters()) {
      ASSERT_EQ(slot->impl().get(), sparse_impls[i++]) << n;
      ASSERT_TRUE(slot->storage()->is_allocated());
    }

    // Training: dense grads flow through FSDP, sparse grads stay local.
    Tensor idx = ops::IndexTensor({(r * 3) % 11, (r * 2 + 1) % 7,
                                   (r + 5) % 11, (r + 4) % 7},
                                  {2, 2});
    Tensor out = (*model)(idx);
    autograd::RunBackward(ops::Sum(ops::Mul(out, out)));
    for (auto& [n, slot] : model->sparse->NamedParameters()) {
      ASSERT_TRUE(slot->grad().defined()) << n;  // local sparse gradient
    }
    for (int u = 0; u < state->num_units(); ++u) {
      ASSERT_TRUE(state->unit_handle(u).sharded_param().grad().defined());
    }
    // And the sharded dense grads match a local run of the same model.
    nn::InitCtx ctx2(Device::kCpu, 21);
    DhenFull local(ctx2);
    Tensor lout = local(idx);
    autograd::RunBackward(ops::Sum(ops::Mul(lout, lout)));
    std::map<std::string, Tensor> local_grads;
    for (auto& [n, slot] : local.NamedParameters()) {
      local_grads[n] = slot->grad();
    }
    for (int u = 0; u < state->num_units(); ++u) {
      for (auto& [fqn, grad] : state->unit_handle(u).GatherFullGrads()) {
        // FSDP averages over ranks; both ranks used the same data here only
        // when r-indices coincide, so compare against the local run divided
        // appropriately: with distinct per-rank data we just check finiteness
        // and shape.
        ASSERT_TRUE(grad.defined()) << fqn;
        ASSERT_EQ(grad.shape(), local_grads.at(fqn).shape()) << fqn;
        ASSERT_FALSE(grad.HasNonFinite()) << fqn;
      }
    }
  });
}

TEST(IgnoredModulesTest, IgnoredParamsAbsentFromStateDict) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 22);
    auto model = std::make_shared<DhenFull>(ctx);
    core::FsdpOptions opts;
    opts.ignore_policy = core::ModuleTypePolicy({"DhenSparseArch"});
    auto state = core::FullyShard(model, mesh, r, opts);
    for (auto& [fqn, value] : state->FullStateDict()) {
      ASSERT_EQ(fqn.find("sparse."), std::string::npos) << fqn;
    }
  });
}

// --------------------------------------------- sharded N -> M round trips

/// Reshard-on-load across world sizes: train at world N (so Adam moments
/// and padded/uneven flat tails are populated), save the per-rank sharded
/// checkpoint, load at world M with differently-seeded fresh objects, and
/// require the full state dict AND the full Adam state back bitwise. The
/// (4,3) case exercises uneven division (per-unit numels not divisible by
/// 3), so writer padding is dropped at assembly and re-derived at M.
class ShardedReshardTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShardedReshardTest, SaveAtNLoadAtMBitwise) {
  const auto [n, m] = GetParam();
  const std::string stem =
      TempPath(("reshard" + std::to_string(n) + "to" + std::to_string(m))
                   .c_str());
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  auto tokens_for = [](int r) {
    return ops::IndexTensor(
        {(r * 3 + 1) % 13, (r * 5 + 2) % 13, (r + 3) % 13, (r + 4) % 13},
        {1, 4});
  };
  Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
  core::FsdpOptions opts;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});

  // Train 2 steps at world N, capture the full state, save per-rank shards.
  std::vector<std::pair<std::string, Tensor>> want_params;
  std::vector<core::FullOptimEntry> want_optim;
  {
    comm::DeviceMesh mesh(n, n);
    RunOnRanks(n, [&](int r) {
      nn::InitCtx ctx(Device::kCpu, 42);
      auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
      auto state = core::FullyShard(model, mesh, r, opts);
      optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
      for (int s = 0; s < 2; ++s) {
        adam.ZeroGrad();
        Tensor loss = ops::CrossEntropy((*model)(tokens_for(r)), targets);
        autograd::RunBackward(loss);
        adam.Step();
      }
      ASSERT_TRUE(
          elastic::SaveShardedCheckpoint(stem, 1, *state, &adam).ok());
      // Collective gathers: every rank must enter; rank 0 keeps the result.
      auto full_params = state->FullStateDict();
      auto full_optim = core::GatherFullOptimState(*state, adam);
      if (r == 0) {
        want_params = std::move(full_params);
        want_optim = std::move(full_optim);
      }
    });
  }
  EXPECT_EQ(elastic::LatestShardedStep(stem), 1);

  // The offline assembly already carries the writer world size and step.
  auto assembled = elastic::AssembleShardedCheckpoint(stem, 1);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  EXPECT_EQ(assembled->world_size, n);
  EXPECT_EQ(assembled->train_step, 1);

  // Load at world M into differently-initialized fresh objects.
  {
    comm::DeviceMesh mesh(m, m);
    RunOnRanks(m, [&](int r) {
      nn::InitCtx ctx(Device::kCpu, 777);  // overwritten by the load
      auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
      auto state = core::FullyShard(model, mesh, r, opts);
      optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
      int64_t loaded_step = -1;
      ASSERT_TRUE(
          elastic::LoadShardedCheckpoint(stem, 1, *state, &adam, &loaded_step)
              .ok());
      EXPECT_EQ(loaded_step, 1);
      auto got_params = state->FullStateDict();
      ASSERT_EQ(got_params.size(), want_params.size());
      for (size_t i = 0; i < want_params.size(); ++i) {
        EXPECT_EQ(got_params[i].first, want_params[i].first);
        fsdp::testing::ExpectAllClose(got_params[i].second,
                                      want_params[i].second, 0, 0);
      }
      auto got_optim = core::GatherFullOptimState(*state, adam);
      ASSERT_EQ(got_optim.size(), want_optim.size());
      for (size_t i = 0; i < want_optim.size(); ++i) {
        EXPECT_EQ(got_optim[i].fqn, want_optim[i].fqn);
        EXPECT_EQ(got_optim[i].step, want_optim[i].step);
        fsdp::testing::ExpectAllClose(got_optim[i].exp_avg,
                                      want_optim[i].exp_avg, 0, 0);
        fsdp::testing::ExpectAllClose(got_optim[i].exp_avg_sq,
                                      want_optim[i].exp_avg_sq, 0, 0);
      }
    });
  }
  for (int r = 0; r < n; ++r) {
    std::remove(elastic::ShardFileName(stem, 1, r, n).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(ShrinkGrowUneven, ShardedReshardTest,
                         ::testing::Values(std::make_pair(4, 2),
                                           std::make_pair(2, 4),
                                           std::make_pair(4, 3)));

}  // namespace
}  // namespace fsdp
