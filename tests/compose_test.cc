// Composed parallelism: FSDP x TP x PP through one plan IR (paper Sec 7.1).
//
// The composed anti-drift contract extends tests/plan_test.cc to three mesh
// axes: a real 8-rank run (pp2 x dp2 x tp2) records every instruction it
// executes — FSDP hooks on the dp axis, TP layers on the tp axis, pipeline
// handoffs on the pp axis — into one per-rank plan::ExecLog, and that log's
// canonical projection must equal the per-stage projection of the composed
// builder plan, which the simulator interprets unchanged. PlanValidator
// must accept all three forms and reject hand-corrupted plans (unmatched
// sends, recv-before-send cycles, off-axis collectives).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "autograd/engine.h"
#include "comm/plan_replay.h"
#include "comm/process_group.h"
#include "common/threading.h"
#include "core/fsdp.h"
#include "nn/tensor_parallel.h"
#include "plan/builder.h"
#include "plan/passes.h"
#include "plan/perturb.h"
#include "sim/topology.h"
#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using plan::Axis;
using plan::Instr;
using plan::Op;
using plan::Phase;
using plan::Perturbation;
using plan::PerturbKind;
using plan::StepPlan;

// --------------------------------------------------- N-d mesh edge cases

TEST(DeviceMeshNdTest, CreateRejectsBadShapes) {
  std::shared_ptr<comm::DeviceMesh> mesh;
  // Non-divisible world: 3 x 2 != 8. A Status error, never an abort.
  Status st = comm::DeviceMesh::Create(8, {{"dp", 3}, {"tp", 2}}, &mesh);
  EXPECT_FALSE(st.ok());
  // Zero-size axis.
  st = comm::DeviceMesh::Create(8, {{"dp", 0}, {"tp", 8}}, &mesh);
  EXPECT_FALSE(st.ok());
  // Duplicate axis names.
  st = comm::DeviceMesh::Create(8, {{"dp", 2}, {"dp", 4}}, &mesh);
  EXPECT_FALSE(st.ok());
  // Empty axis name.
  st = comm::DeviceMesh::Create(4, {{"", 4}}, &mesh);
  EXPECT_FALSE(st.ok());
  // Empty axis list.
  st = comm::DeviceMesh::Create(4, {}, &mesh);
  EXPECT_FALSE(st.ok());
  // Non-positive world.
  st = comm::DeviceMesh::Create(0, {{"dp", 1}}, &mesh);
  EXPECT_FALSE(st.ok());
}

TEST(DeviceMeshNdTest, CoordinatesAndSlices) {
  std::shared_ptr<comm::DeviceMesh> mesh;
  ASSERT_TRUE(
      comm::DeviceMesh::Create(8, {{"pp", 2}, {"dp", 2}, {"tp", 2}}, &mesh)
          .ok());

  // Row-major, last axis fastest: rank 5 = pp 1, dp 0, tp 1.
  int c = -1;
  ASSERT_TRUE(mesh->Coordinate("pp", 5, &c).ok());
  EXPECT_EQ(c, 1);
  ASSERT_TRUE(mesh->Coordinate("dp", 5, &c).ok());
  EXPECT_EQ(c, 0);
  ASSERT_TRUE(mesh->Coordinate("tp", 5, &c).ok());
  EXPECT_EQ(c, 1);
  int size = 0;
  ASSERT_TRUE(mesh->AxisSize("dp", &size).ok());
  EXPECT_EQ(size, 2);

  // A slice's ProcessGroup rank is the coordinate, its size the axis size.
  comm::ProcessGroup tp;
  ASSERT_TRUE(mesh->Slice("tp", 5, &tp).ok());
  EXPECT_EQ(tp.rank(), 1);
  EXPECT_EQ(tp.size(), 2);

  // Errors, not aborts: unknown axis, out-of-range rank.
  EXPECT_FALSE(mesh->Slice("ep", 0, &tp).ok());
  EXPECT_FALSE(mesh->Slice("tp", 8, &tp).ok());
  EXPECT_FALSE(mesh->Coordinate("ep", 0, &c).ok());
  EXPECT_FALSE(mesh->AxisSize("ep", &size).ok());

  // FsdpSubmesh: the sharding factor must divide the axis size.
  std::shared_ptr<comm::DeviceMesh> sub;
  EXPECT_FALSE(mesh->FsdpSubmesh("dp", 0, 3, &sub).ok());
  ASSERT_TRUE(mesh->FsdpSubmesh("dp", 0, 2, &sub).ok());
  EXPECT_EQ(sub->world_size(), 2);
  EXPECT_EQ(sub->sharding_factor(), 2);

  // Legacy two-argument meshes carry no named axes.
  comm::DeviceMesh legacy(4, 4);
  EXPECT_TRUE(legacy.axes().empty());
  Status st = legacy.Slice("dp", 0, &tp);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("no named axes"), std::string::npos)
      << st.message();
}

TEST(DeviceMeshNdTest, AxisSlicesCarryDisjointCollectives) {
  std::shared_ptr<comm::DeviceMesh> mesh;
  ASSERT_TRUE(comm::DeviceMesh::Create(4, {{"dp", 2}, {"tp", 2}}, &mesh).ok());
  // tp pairs {0,1},{2,3}; dp pairs {0,2},{1,3}. Each rank AllReduces its
  // global rank on both axes; the sums identify the group membership.
  RunOnRanks(4, [&](int r) {
    comm::ProcessGroup tp, dp;
    ASSERT_TRUE(mesh->Slice("tp", r, &tp).ok());
    ASSERT_TRUE(mesh->Slice("dp", r, &dp).ok());
    float v = static_cast<float>(r);
    ASSERT_TRUE(tp.AllReduce(&v, 1).WaitStatus().ok());
    EXPECT_FLOAT_EQ(v, r < 2 ? 1.f : 5.f);  // 0+1 or 2+3
    v = static_cast<float>(r);
    ASSERT_TRUE(dp.AllReduce(&v, 1).WaitStatus().ok());
    EXPECT_FLOAT_EQ(v, r % 2 == 0 ? 2.f : 4.f);  // 0+2 or 1+3
  });
}

TEST(DeviceMeshNdTest, AbortPropagatesAcrossSiblingAxes) {
  std::shared_ptr<comm::DeviceMesh> mesh;
  ASSERT_TRUE(comm::DeviceMesh::Create(4, {{"dp", 2}, {"tp", 2}}, &mesh).ok());

  comm::ProcessGroup tp0, dp1;
  ASSERT_TRUE(mesh->Slice("tp", 0, &tp0).ok());
  ASSERT_TRUE(mesh->Slice("dp", 1, &dp1).ok());

  // A rank blocked in a point-to-point receive on the dp axis (peer never
  // sends) must be woken with an error when a *tp* communicator aborts —
  // the whole mesh is one failure domain.
  Status recv_status;
  std::thread blocked([&] {
    float buf = 0;
    recv_status = dp1.Recv(&buf, 1, /*src_rank=*/1).WaitStatus();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  tp0.communicator()->Abort(Status::Invalid("injected tp failure"));
  blocked.join();
  EXPECT_FALSE(recv_status.ok());

  // Sibling-axis communicators observe the abort...
  comm::ProcessGroup dp0;
  ASSERT_TRUE(mesh->Slice("dp", 0, &dp0).ok());
  EXPECT_TRUE(dp0.communicator()->aborted());
  // ...and so do FSDP submeshes carved from the mesh (same abort web).
  std::shared_ptr<comm::DeviceMesh> sub;
  ASSERT_TRUE(mesh->FsdpSubmesh("dp", 0, 2, &sub).ok());
  float v = 0;
  EXPECT_FALSE(sub->WorldGroup(0).AllReduce(&v, 1).WaitStatus().ok());
}

// ------------------------------------------------------- lane / rendering

TEST(ComposedPlanTest, LaneTrackAndRenderNames) {
  Instr tp_ar;
  tp_ar.op = Op::kTpAllReduce;
  tp_ar.lane = plan::Lane::kComm;
  tp_ar.axis = Axis::kTp;
  EXPECT_EQ(plan::LaneTrackName(tp_ar), "comm.tp");

  Instr send;
  send.op = Op::kSendAct;
  send.lane = plan::Lane::kComm;
  send.axis = Axis::kPp;
  send.phase = Phase::kForward;
  send.stage = 0;
  send.peer_stage = 1;
  EXPECT_EQ(plan::LaneTrackName(send), "comm.pp");
  EXPECT_EQ(plan::RenderInstr(send, {}), "SEND:fwd.s0>s1");

  Instr recv = send;
  recv.op = Op::kRecvAct;
  recv.phase = Phase::kBackward;
  EXPECT_EQ(plan::RenderInstr(recv, {}), "RECV:bwd.s0<s1");

  // dp-axis comm instructions keep the plain lane name (existing traces
  // must not change track), and compute stays compute.
  Instr ag;
  ag.op = Op::kUnshard;
  ag.lane = plan::Lane::kComm;
  ag.axis = Axis::kDp;
  EXPECT_EQ(plan::LaneTrackName(ag), "comm");
  Instr fwd;
  fwd.op = Op::kCompute;
  fwd.lane = plan::Lane::kCompute;
  EXPECT_EQ(plan::LaneTrackName(fwd), "compute");
}

// --------------------------------------------------- composed plan builder

plan::ComposedPlanOptions ComposedOpts(int microbatches) {
  plan::ComposedPlanOptions o;
  o.fsdp = plan::FsdpPlanOptions::Runtime();
  o.fsdp.accum = plan::AccumMode::kReduceLastMicrobatch;
  o.pp_stages = 2;
  o.microbatches = microbatches;
  o.tp_degree = 2;
  o.act_bytes = 512;
  o.tp_bytes = 512;
  return o;
}

StepPlan BuildTwoStagePlan(int microbatches = 2) {
  return plan::BuildComposedStepPlan(
      {{"[root]", "a", "b"}, {"[root]", "c", "d"}}, ComposedOpts(microbatches));
}

int CountOp(const StepPlan& p, Op op) {
  int n = 0;
  for (const Instr& in : p.instrs) n += in.op == op ? 1 : 0;
  return n;
}

int FindInstr(const StepPlan& p, const std::function<bool(const Instr&)>& f) {
  for (int i = 0; i < p.size(); ++i) {
    if (f(p.instrs[static_cast<size_t>(i)])) return i;
  }
  return -1;
}

TEST(ComposedPlanTest, BuilderEmitsAxisTaggedComposedSchedule) {
  const StepPlan p = BuildTwoStagePlan(/*microbatches=*/2);
  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_TRUE(st.ok()) << st.message();

  // Per microbatch: one fwd activation send (s0>s1) and one bwd gradient
  // send (s1>s0), each with its matching recv.
  EXPECT_EQ(CountOp(p, Op::kSendAct), 4);
  EXPECT_EQ(CountOp(p, Op::kRecvAct), 4);
  // Four TP units (a, b, c, d) x (fwd + bwd) x 2 microbatches.
  EXPECT_EQ(CountOp(p, Op::kTpAllReduce), 16);

  const auto canon = p.Canonical();
  auto has = [&](const std::string& s) {
    return std::find(canon.begin(), canon.end(), s) != canon.end();
  };
  EXPECT_TRUE(has("SEND:fwd.s0>s1"));
  EXPECT_TRUE(has("RECV:fwd.s1<s0"));
  EXPECT_TRUE(has("SEND:bwd.s1>s0"));
  EXPECT_TRUE(has("RECV:bwd.s0<s1"));

  // FilterStage keeps only that stage's instructions (plus the all-stage
  // optimizer join).
  const StepPlan s0 = plan::FilterStage(p, 0);
  for (const Instr& in : s0.instrs) {
    EXPECT_TRUE(in.stage == 0 || in.stage == -1);
  }
  EXPECT_GT(s0.size(), 0);
  const Status s0st = plan::PlanValidator{}.Check(s0);
  EXPECT_TRUE(s0st.ok()) << s0st.message();
}

TEST(ComposedPlanTest, ValidatorRejectsCorruptedComposedPlans) {
  const StepPlan base = BuildTwoStagePlan();
  const plan::PlanValidator validator{};

  // Dropping a recv leaves its send dangling: the peer stage would block
  // at the step boundary.
  const int recv_i =
      FindInstr(base, [](const Instr& in) { return in.op == Op::kRecvAct; });
  ASSERT_GE(recv_i, 0);
  Status st = validator.Check(
      ApplyPerturbation(base, {PerturbKind::kDropInstr, recv_i, 0}));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("send never matched"), std::string::npos)
      << st.message();

  // The forward send and the next stage's recv are adjacent in the composed
  // schedule; swapping them schedules the recv before its send — the
  // cross-stage cycle the validator must catch.
  const int send_i = FindInstr(base, [&base](const Instr& in) {
    return in.op == Op::kSendAct;
  });
  ASSERT_GE(send_i, 0);
  ASSERT_LT(send_i + 1, base.size());
  ASSERT_EQ(base.instrs[static_cast<size_t>(send_i) + 1].op, Op::kRecvAct);
  st = validator.Check(
      ApplyPerturbation(base, {PerturbKind::kSwapAdjacent, send_i, 0}));
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("matching send"), std::string::npos)
      << st.message();

  // Axis discipline: a TP collective retagged onto the dp axis.
  const int tp_i = FindInstr(
      base, [](const Instr& in) { return in.op == Op::kTpAllReduce; });
  ASSERT_GE(tp_i, 0);
  StepPlan off_axis = base;
  off_axis.instrs[static_cast<size_t>(tp_i)].axis = Axis::kDp;
  st = validator.Check(off_axis);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("off the tp axis"), std::string::npos)
      << st.message();

  // And the reverse: an FSDP AllGather wandering onto the tp axis.
  const int ag_i =
      FindInstr(base, [](const Instr& in) { return in.op == Op::kUnshard; });
  ASSERT_GE(ag_i, 0);
  StepPlan off_dp = base;
  off_dp.instrs[static_cast<size_t>(ag_i)].axis = Axis::kTp;
  st = validator.Check(off_dp);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("off the dp axis"), std::string::npos)
      << st.message();
}

// Multiset of communication work per mesh axis: what must survive any
// semantics-preserving compiler pass. P2p instructions key by endpoint
// pair, collectives by covered unit.
std::multiset<std::string> AxisCommMultiset(const StepPlan& p) {
  std::multiset<std::string> out;
  for (const Instr& in : p.instrs) {
    if (in.lane != plan::Lane::kComm) continue;
    std::ostringstream key;
    key << plan::AxisName(in.axis) << "/" << plan::OpName(in.op) << "/mb"
        << in.microbatch << "/"
        << (in.phase == Phase::kBackward ? "bwd" : "fwd");
    if (in.op == Op::kSendAct || in.op == Op::kRecvAct) {
      key << "/s" << in.stage << ":s" << in.peer_stage;
      out.insert(key.str());
      continue;
    }
    for (int u : plan::CoveredUnits(in)) {
      out.insert(key.str() + "/" + p.unit_names[static_cast<size_t>(u)]);
    }
  }
  return out;
}

TEST(ComposedPlanTest, PassesPreserveAxisCommMultisets) {
  StepPlan p = BuildTwoStagePlan(/*microbatches=*/2);
  const auto before = AxisCommMultiset(p);

  plan::PassOptions po;
  po.unit_shard_bytes.assign(p.unit_names.size(), 512);
  po.unit_reduce_bytes.assign(p.unit_names.size(), 512);
  po.fuse_below_bytes = 4096;  // everything is a fusion candidate
  const plan::PassManager pm = plan::PassManager::Default(po);
  pm.Run(p);

  const Status st = plan::PlanValidator{}.Check(p);
  ASSERT_TRUE(st.ok()) << st.message();
  EXPECT_EQ(AxisCommMultiset(p), before);
}

// ------------------------------------------------- perturb classification

TEST(ComposedPerturbTest, ClassifierCoversComposedOps) {
  const StepPlan p = BuildTwoStagePlan();

  // Dropping any comm-lane instruction desyncs its axis: TP AllReduce and
  // pipeline send alike.
  const int tp_i =
      FindInstr(p, [](const Instr& in) { return in.op == Op::kTpAllReduce; });
  const int send_i =
      FindInstr(p, [](const Instr& in) { return in.op == Op::kSendAct; });
  ASSERT_GE(tp_i, 0);
  ASSERT_GE(send_i, 0);
  EXPECT_TRUE(PerturbsCollectives(p, {PerturbKind::kDropInstr, tp_i, 0}));
  EXPECT_TRUE(PerturbsCollectives(p, {PerturbKind::kDropInstr, send_i, 0}));

  // Swapping the adjacent fwd send/recv reorders the pp stream: violating.
  ASSERT_EQ(p.instrs[static_cast<size_t>(send_i) + 1].op, Op::kRecvAct);
  EXPECT_TRUE(PerturbsCollectives(p, {PerturbKind::kSwapAdjacent, send_i, 0}));

  // A pp-axis forward recv directly followed by the receiving stage's dp-axis
  // root AllGather swap cleanly: each per-axis stream keeps its own order.
  const int cross_i = FindInstr(p, [&p](const Instr& in) {
    const int i = static_cast<int>(&in - p.instrs.data());
    return in.op == Op::kRecvAct && in.phase == Phase::kForward &&
           i + 1 < p.size() &&
           p.instrs[static_cast<size_t>(i) + 1].op == Op::kUnshard;
  });
  ASSERT_GE(cross_i, 0) << "expected fwd-recv/root-unshard adjacency";
  EXPECT_FALSE(
      PerturbsCollectives(p, {PerturbKind::kSwapAdjacent, cross_i, 0}));

  // Delays never desync — they are timing, not stream order.
  EXPECT_FALSE(PerturbsCollectives(p, {PerturbKind::kDelay, send_i, 500.0}));
}

// --------------------------------------------- composed anti-drift (real)

Instr P2pRecord(Op op, Phase phase, int stage, int peer, int mb) {
  Instr in;
  in.op = op;
  in.unit = -1;
  in.phase = phase;
  in.lane = plan::Lane::kComm;
  in.axis = Axis::kPp;
  in.stage = stage;
  in.peer_stage = peer;
  in.microbatch = mb;
  return in;
}

TEST(ComposedAntiDriftTest, RealRunMatchesBuilderAndSimulator) {
  // 8 ranks as pp2 x dp2 x tp2. Each pipeline stage: a root-owned plain MLP
  // at the INPUT end (so the root's last AccumulateGrad — and with it the
  // root's post-backward hook — fires last, matching the builder's
  // root-compute-last backward order) followed by two TP MLP units.
  const int W = 8, S = 2, M = 2;
  const int64_t dim = 8, hidden = 8;
  std::shared_ptr<comm::DeviceMesh> mesh;
  ASSERT_TRUE(
      comm::DeviceMesh::Create(W, {{"pp", 2}, {"dp", 2}, {"tp", 2}}, &mesh)
          .ok());

  std::vector<StepPlan> snaps(W);
  std::vector<std::vector<std::string>> stage_names(S);
  std::vector<Status> fsdp_status(W);
  std::mutex mu;

  RunOnRanks(W, [&](int r) {
    int stage = -1, dp = -1;
    ASSERT_TRUE(mesh->Coordinate("pp", r, &stage).ok());
    ASSERT_TRUE(mesh->Coordinate("dp", r, &dp).ok());
    comm::ProcessGroup tp_pg, pp_pg;
    ASSERT_TRUE(mesh->Slice("tp", r, &tp_pg).ok());
    ASSERT_TRUE(mesh->Slice("pp", r, &pp_pg).ok());
    std::shared_ptr<comm::DeviceMesh> sub;
    ASSERT_TRUE(mesh->FsdpSubmesh("dp", r, 2, &sub).ok());

    nn::InitCtx ctx(Device::kCpu, 40 + stage);
    auto mlp1 = std::make_shared<nn::TensorParallelMLP>(dim, hidden, tp_pg,
                                                        ctx);
    auto mlp2 = std::make_shared<nn::TensorParallelMLP>(dim, hidden, tp_pg,
                                                        ctx);
    auto stage_mod = std::make_shared<nn::Sequential>();
    stage_mod->Append(std::make_shared<nn::MLP>(dim, hidden, ctx));
    stage_mod->Append(mlp1);
    stage_mod->Append(mlp2);

    core::FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TensorParallelMLP"});
    opts.sync_module_states = false;  // TP slices differ per rank by design
    opts.limit_all_gathers = 0;       // plan shape carries no gates
    auto state = core::FullyShard(stage_mod, *sub, dp, opts);

    const std::vector<std::string> names =
        state->ExpectedStepPlan().unit_names;
    ASSERT_EQ(names.size(), 3u);
    {
      std::lock_guard<std::mutex> lock(mu);
      stage_names[static_cast<size_t>(stage)] = names;
    }

    // One executed log per rank, fed by all three axes.
    plan::ExecLog log;
    state->AttachExecLog(&log, stage);
    nn::TpRecorder rec1{&log, names[1], stage, 0, 512};
    nn::TpRecorder rec2{&log, names[2], stage, 0, 512};
    mlp1->set_recorder(&rec1);
    mlp2->set_recorder(&rec2);

    Rng rng(7 + r, 0);
    for (int mb = 0; mb < M; ++mb) {
      state->set_composed_microbatch(mb);
      rec1.microbatch = rec2.microbatch = mb;
      std::optional<core::FsdpNoSyncGuard> no_sync;
      if (mb + 1 < M) no_sync.emplace(*state);

      if (stage == 0) {
        Tensor x = Tensor::Randn({2, dim}, rng);
        Tensor y = (*stage_mod)(x);
        ASSERT_TRUE(pp_pg.Send(y, /*dst=*/1).WaitStatus().ok());
        log.Record(P2pRecord(Op::kSendAct, Phase::kForward, 0, 1, mb));
        Tensor g = Tensor::Zeros(y.shape());
        ASSERT_TRUE(pp_pg.Recv(g, /*src=*/1).WaitStatus().ok());
        log.Record(P2pRecord(Op::kRecvAct, Phase::kBackward, 0, 1, mb));
        autograd::RunBackward(y, g);
      } else {
        Tensor x = Tensor::Zeros({2, dim});
        ASSERT_TRUE(pp_pg.Recv(x, /*src=*/0).WaitStatus().ok());
        log.Record(P2pRecord(Op::kRecvAct, Phase::kForward, 1, 0, mb));
        // The boundary activation is this stage's autograd entry: it must
        // participate so the TP input operator attaches and the input
        // gradient exists to hand back.
        x.set_requires_grad(true);
        Tensor y = (*stage_mod)(x);
        autograd::RunBackward(ops::Mean(ops::Mul(y, y)));
        ASSERT_TRUE(x.grad().defined());
        ASSERT_TRUE(pp_pg.Send(x.grad(), /*dst=*/0).WaitStatus().ok());
        log.Record(P2pRecord(Op::kSendAct, Phase::kBackward, 1, 0, mb));
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    snaps[static_cast<size_t>(r)] = log.Snapshot();
    fsdp_status[static_cast<size_t>(r)] = state->status();
  });

  for (int r = 0; r < W; ++r) {
    ASSERT_TRUE(fsdp_status[static_cast<size_t>(r)].ok())
        << "rank " << r << ": " << fsdp_status[static_cast<size_t>(r)].ToString();
  }

  // The builder's composed prediction over the runtime's own unit names.
  plan::ComposedPlanOptions copt = ComposedOpts(M);
  const StepPlan composed =
      plan::BuildComposedStepPlan({stage_names[0], stage_names[1]}, copt);
  const plan::PlanValidator validator{};
  Status st = validator.Check(composed);
  ASSERT_TRUE(st.ok()) << st.message();

  // Anti-drift across all three axes: every rank's executed stream equals
  // its stage's projection of the composed plan, and validates on its own
  // (per-rank logs carry one stage; peer-stage send/recv matching is
  // skipped for stages the log does not contain).
  for (int r = 0; r < W; ++r) {
    int stage = -1;
    ASSERT_TRUE(mesh->Coordinate("pp", r, &stage).ok());
    const StepPlan& snap = snaps[static_cast<size_t>(r)];
    ASSERT_FALSE(snap.instrs.empty()) << "rank " << r;
    if (std::getenv("COMPOSE_DUMP") && r == 4) {
      std::ostringstream os;
      os << "real:";
      for (const auto& s : snap.Canonical()) os << " " << s;
      os << "\nplan:";
      for (const auto& s : plan::FilterStage(composed, stage).Canonical())
        os << " " << s;
      fprintf(stderr, "%s\n", os.str().c_str());
    }
    EXPECT_EQ(snap.Canonical(), plan::FilterStage(composed, stage).Canonical())
        << "rank " << r << " (stage " << stage << ") drifted";
    st = validator.Check(snap);
    EXPECT_TRUE(st.ok()) << "rank " << r << ": " << st.message();
  }

  // Third consumer: the simulator interprets the exact same composed plan
  // (real unit names and all) at the composed geometry — dp collectives on
  // the dp lane, TP AllReduces intra-host, activation handoffs
  // point-to-point.
  simfsdp::TransformerShape shape;
  shape.name = "compose-toy";
  shape.hidden = 64;
  shape.layers = static_cast<int>(composed.unit_names.size()) - 1;
  shape.heads = 2;
  shape.seq = 16;
  shape.vocab = 128;
  simfsdp::Workload w = simfsdp::MakeTransformer(shape);
  ASSERT_EQ(w.units.size() + 1, composed.unit_names.size());

  simfsdp::FsdpSimConfig cfg;
  cfg.sharding_factor = 2;
  cfg.tp_degree = 2;
  cfg.limit_all_gathers = 0;  // the plan carries no gate instructions
  cfg.accum = plan::AccumMode::kReduceLastMicrobatch;
  cfg.microbatches = M;
  simfsdp::FsdpSimulator sim(w, sim::Topology{1, 8}, sim::SimConstants{}, cfg,
                             composed);
  EXPECT_EQ(sim.plan().Canonical(), composed.Canonical());
  const simfsdp::SimMetrics m = sim.Run();
  EXPECT_FALSE(m.oom);
  EXPECT_GT(m.iter_time_us, 0);
}

// ------------------------------------------------- composed plan replay

TEST(ComposedReplayTest, ReplaysCleanlyOnEightRanks) {
  const int W = 8;
  std::shared_ptr<comm::DeviceMesh> mesh;
  ASSERT_TRUE(
      comm::DeviceMesh::Create(W, {{"pp", 2}, {"dp", 2}, {"tp", 2}}, &mesh)
          .ok());
  const StepPlan p = BuildTwoStagePlan(/*microbatches=*/2);

  RunOnRanks(W, [&](int r) {
    comm::ProcessGroup dp, tp, pp;
    ASSERT_TRUE(mesh->Slice("dp", r, &dp).ok());
    ASSERT_TRUE(mesh->Slice("tp", r, &tp).ok());
    ASSERT_TRUE(mesh->Slice("pp", r, &pp).ok());
    comm::ReplayOptions ro;
    ro.unit_numel = 32;
    ro.tp_group = tp;
    ro.pp_group = pp;
    ro.pp_stage = pp.rank();
    const Status st = comm::ReplayPlan(dp, p, ro);
    EXPECT_TRUE(st.ok()) << "rank " << r << ": " << st.ToString();
  });
}

TEST(ComposedReplayTest, DroppedSendIsCaughtAndBenignCrossAxisSwapIsNot) {
  const StepPlan base = BuildTwoStagePlan(/*microbatches=*/2);

  // The violating fault: stage 0 drops its forward activation send. Its
  // pipeline peer blocks in Recv until the watchdog aborts the mesh.
  const int send_i = FindInstr(base, [](const Instr& in) {
    return in.op == Op::kSendAct && in.stage == 0;
  });
  ASSERT_GE(send_i, 0);
  // The benign fault: stage 1's pp-axis forward recv and the dp-axis root
  // AllGather that follows it swap without reordering either axis's stream.
  const int cross_i = FindInstr(base, [&base](const Instr& in) {
    const int i = static_cast<int>(&in - base.instrs.data());
    return in.op == Op::kRecvAct && in.phase == Phase::kForward &&
           i + 1 < base.size() &&
           base.instrs[static_cast<size_t>(i) + 1].op == Op::kUnshard;
  });
  ASSERT_GE(cross_i, 0);

  struct Case {
    const char* label;
    Perturbation perturb;
    bool violates;
    int faulty_rank;  // the rank replaying the perturbed plan; it must be on
                      // the stage that executes the perturbed instructions
  };
  const std::vector<Case> cases = {
      {"drop-send", {PerturbKind::kDropInstr, send_i, 0}, true, 0},
      {"cross-axis-swap", {PerturbKind::kSwapAdjacent, cross_i, 0}, false, 4},
  };

  for (const Case& c : cases) {
    EXPECT_EQ(PerturbsCollectives(base, c.perturb), c.violates) << c.label;
    const StepPlan perturbed = ApplyPerturbation(base, c.perturb);

    const int W = 8;
    std::shared_ptr<comm::DeviceMesh> mesh;
    ASSERT_TRUE(
        comm::DeviceMesh::Create(W, {{"pp", 2}, {"dp", 2}, {"tp", 2}}, &mesh)
            .ok());
    if (c.violates) {
      mesh->SetDefaultTimeout(150);
      mesh->SetDesyncDetection(true);
    }

    std::vector<Status> status(W);
    RunOnRanks(W, [&](int r) {
      comm::ProcessGroup dp, tp, pp;
      ASSERT_TRUE(mesh->Slice("dp", r, &dp).ok());
      ASSERT_TRUE(mesh->Slice("tp", r, &tp).ok());
      ASSERT_TRUE(mesh->Slice("pp", r, &pp).ok());
      comm::ReplayOptions ro;
      ro.unit_numel = 32;
      ro.tp_group = tp;
      ro.pp_group = pp;
      ro.pp_stage = pp.rank();
      if (c.violates) ro.timeout_ms = 150;
      status[static_cast<size_t>(r)] =
          comm::ReplayPlan(dp, r == c.faulty_rank ? perturbed : base, ro);
    });

    if (c.violates) {
      // The blocked pipeline peer of rank 0 (global rank 4: same dp/tp
      // coordinates, other stage) must fail, and the abort must have
      // propagated across sibling axes of the shared mesh.
      EXPECT_FALSE(status[4].ok()) << c.label;
      bool any_error = false;
      for (const Status& st : status) any_error |= !st.ok();
      EXPECT_TRUE(any_error) << c.label;
      comm::ProcessGroup dp0;
      ASSERT_TRUE(mesh->Slice("dp", 0, &dp0).ok());
      EXPECT_TRUE(dp0.communicator()->aborted()) << c.label;
    } else {
      for (int r = 0; r < W; ++r) {
        EXPECT_TRUE(status[static_cast<size_t>(r)].ok())
            << c.label << " rank " << r << ": "
            << status[static_cast<size_t>(r)].ToString();
      }
    }
  }
}

}  // namespace
}  // namespace fsdp
