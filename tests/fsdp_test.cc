// FSDP core tests: FlatParameter mechanics, mathematical equivalence with
// local training across every sharding strategy / wrapping policy / world
// size, deferred initialization, mixed precision, prefetching event order,
// the rate limiter, gradient accumulation, and the documented limitations.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "nn/transformer.h"
#include "optim/grad_scaler.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using core::FlatParamHandle;
using core::FsdpOptions;
using core::FullyShardedDataParallel;
using core::MixedPrecision;
using core::ShardingStrategy;
using fsdp::testing::ExpectAllClose;

nn::ModulePtr MakeModel(uint64_t seed, Device device = Device::kCpu) {
  nn::InitCtx ctx(device, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank) {
  return ops::IndexTensor({(rank * 3 + 1) % 13, (rank * 5 + 2) % 13,
                           (rank * 7 + 3) % 13, (rank + 4) % 13},
                          {1, 4});
}

Tensor RankTargets(int rank) {
  return ops::IndexTensor({(rank + 5) % 13, (rank + 6) % 13, (rank + 7) % 13,
                           (rank + 8) % 13},
                          {4});
}

core::AutoWrapPolicy BlockPolicy() {
  return core::ModuleTypePolicy({"TransformerBlock"});
}

/// Local reference: `steps` optimizer steps of Adam on the mean-over-ranks
/// loss; returns final parameter values by fqn (and grads before a step if
/// steps == 0).
std::map<std::string, Tensor> LocalAdamReference(int world, int steps,
                                                 uint64_t seed = 42) {
  auto model = MakeModel(seed);
  std::vector<Tensor> params;
  for (Tensor* slot : model->ParameterSlots()) params.push_back(*slot);
  optim::Adam adam(params, {.lr = 1e-2f});
  for (int s = 0; s < std::max(steps, 1); ++s) {
    adam.ZeroGrad();
    for (int r = 0; r < world; ++r) {
      Tensor loss =
          ops::CrossEntropy((*model)(RankTokens(r)), RankTargets(r));
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / world));
    }
    if (s < steps) adam.Step();
  }
  std::map<std::string, Tensor> out;
  for (auto& [name, slot] : model->NamedParameters()) {
    out[name] = (steps == 0) ? slot->grad() : slot->Clone();
  }
  return out;
}

struct StrategyCase {
  ShardingStrategy strategy;
  int world;
  int factor;
  bool wrap_blocks;
  // Multi-step tolerance. FULL_SHARD with power-of-two W reduces in the same
  // float association as the local reference, so it tracks tightly; hybrid's
  // two-level reduction (Eq. 1) and non-power-of-two divisors associate
  // differently, and Adam's m/sqrt(v) amplifies the cancellation error —
  // the paper's own Sec 7.2.1 mathematical-equivalence caveat.
  float rtol = 2e-4f;
  float atol = 1e-5f;
};

std::string CaseName(const ::testing::TestParamInfo<StrategyCase>& info) {
  const StrategyCase& c = info.param;
  std::string s = core::ShardingStrategyName(c.strategy);
  s += "_w" + std::to_string(c.world) + "_f" + std::to_string(c.factor);
  s += c.wrap_blocks ? "_blockwrap" : "_nowrap";
  return s;
}

class FsdpStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(FsdpStrategyTest, GradientsMatchLocalReference) {
  const StrategyCase& c = GetParam();
  auto ref = LocalAdamReference(c.world, /*steps=*/0);
  comm::DeviceMesh mesh(c.world, c.factor);
  RunOnRanks(c.world, [&](int r) {
    auto model = MakeModel(42);
    FsdpOptions opts;
    opts.strategy = c.strategy;
    if (c.wrap_blocks) opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    for (int u = 0; u < fsdp.state().num_units(); ++u) {
      for (auto& [fqn, grad] : fsdp.state().unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.defined()) << fqn;
        ASSERT_TRUE(grad.AllClose(ref.at(fqn), 1e-4f, 1e-5f))
            << "rank " << r << " param " << fqn;
      }
    }
  });
}

TEST_P(FsdpStrategyTest, MultiStepAdamTrainingMatchesLocal) {
  const StrategyCase& c = GetParam();
  const int kSteps = 3;
  auto ref = LocalAdamReference(c.world, kSteps);
  comm::DeviceMesh mesh(c.world, c.factor);
  RunOnRanks(c.world, [&](int r) {
    auto model = MakeModel(42);
    FsdpOptions opts;
    opts.strategy = c.strategy;
    if (c.wrap_blocks) opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    optim::Adam adam(fsdp.Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < kSteps; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      adam.Step();
    }
    for (auto& [fqn, value] : fsdp.FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at(fqn), c.rtol, c.atol))
          << "rank " << r << " param " << fqn;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FsdpStrategyTest,
    ::testing::Values(
        StrategyCase{ShardingStrategy::kFullShard, 4, 4, false},
        StrategyCase{ShardingStrategy::kFullShard, 4, 4, true},
        StrategyCase{ShardingStrategy::kFullShard, 2, 2, true},
        StrategyCase{ShardingStrategy::kFullShard, 3, 3, true, 5e-2f, 3e-3f},
        StrategyCase{ShardingStrategy::kFullShard, 8, 8, true},
        StrategyCase{ShardingStrategy::kShardGradOp, 4, 4, true},
        StrategyCase{ShardingStrategy::kShardGradOp, 4, 4, false},
        StrategyCase{ShardingStrategy::kNoShard, 4, 1, true},
        StrategyCase{ShardingStrategy::kHybridShard, 4, 2, true, 5e-2f, 3e-3f},
        StrategyCase{ShardingStrategy::kHybridShard, 8, 4, true, 5e-2f, 3e-3f},
        StrategyCase{ShardingStrategy::kHybridShard, 8, 2, false, 5e-2f,
                     3e-3f},
        StrategyCase{ShardingStrategy::kHybridShardZero2, 4, 2, true, 5e-2f,
                     3e-3f}),
    CaseName);

// ----------------------------------------------------------- FlatParameter

TEST(FlatParamTest, OffsetsAndPadding) {
  // 3 params of 5, 3, 4 elements over F=4: total 12, padded 12 (divisible).
  auto comm4 = std::make_shared<comm::Communicator>(4);
  Tensor a = Tensor::Ones({5});
  Tensor b = Tensor::Ones({3});
  Tensor cc = Tensor::Ones({2, 2});
  auto infos = core::BuildParamInfos({{"a", &a}, {"b", &b}, {"c", &cc}});
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].offset, 0);
  EXPECT_EQ(infos[1].offset, 5);
  EXPECT_EQ(infos[2].offset, 8);
  RunOnRanks(4, [&](int r) {
    Tensor la = Tensor::Ones({5});
    Tensor lb = Tensor::Ones({3});
    Tensor lc = Tensor::Ones({2, 2});
    auto li = core::BuildParamInfos({{"a", &la}, {"b", &lb}, {"c", &lc}});
    FlatParamHandle h("t", li, comm::ProcessGroup(comm4, r),
                      comm::ProcessGroup(), MixedPrecision{});
    ASSERT_EQ(h.total_numel(), 12);
    ASSERT_EQ(h.padded_numel(), 12);
    ASSERT_EQ(h.shard_numel(), 3);
    ASSERT_EQ(h.padding_numel(), 0);
  });
}

TEST(FlatParamTest, PaddingAtMostFMinusOne) {
  for (int f : {2, 3, 4, 8}) {
    for (int64_t total : {1, 5, 7, 13, 64}) {
      auto comm = std::make_shared<comm::Communicator>(f);
      RunOnRanks(f, [&](int r) {
        Tensor p = Tensor::Ones({total});
        auto infos = core::BuildParamInfos({{"p", &p}});
        FlatParamHandle h("t", infos, comm::ProcessGroup(comm, r),
                          comm::ProcessGroup(), MixedPrecision{});
        ASSERT_LT(h.padding_numel(), f);
        ASSERT_EQ(h.padded_numel() % f, 0);
        ASSERT_EQ(h.shard_numel() * f, h.padded_numel());
      });
    }
  }
}

TEST(FlatParamTest, MaterializeShardGatherRoundTrip) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    Rng rng(5, 0);
    Tensor p1 = Tensor::Randn({3, 3}, rng);
    Tensor p2 = Tensor::Randn({5}, rng);
    Tensor e1 = p1.Clone(), e2 = p2.Clone();
    auto infos = core::BuildParamInfos({{"p1", &p1}, {"p2", &p2}});
    FlatParamHandle h("t", infos, comm::ProcessGroup(comm, r),
                      comm::ProcessGroup(), MixedPrecision{});
    h.MaterializeAndShard(/*sync_from_rank0=*/false);
    auto full = h.GatherFullParams();
    ASSERT_EQ(full.size(), 2u);
    ASSERT_TRUE(full[0].second.AllClose(e1, 0, 0));
    ASSERT_TRUE(full[1].second.AllClose(e2, 0, 0));
    ASSERT_EQ(full[0].second.shape(), (Shape{3, 3}));
  });
}

TEST(FlatParamTest, SyncFromRankZeroPropagates) {
  const int w = 4;
  comm::DeviceMesh mesh(w, 2);  // exercise the two-stage broadcast
  RunOnRanks(w, [&](int r) {
    Tensor p = Tensor::Full({6}, static_cast<float>(r + 1));
    auto infos = core::BuildParamInfos({{"p", &p}});
    FlatParamHandle h("t", infos, mesh.ShardGroup(r), mesh.ReplicateGroup(r),
                      MixedPrecision{});
    h.MaterializeAndShard(/*sync_from_rank0=*/true);
    auto full = h.GatherFullParams();
    ASSERT_TRUE(full[0].second.AllClose(Tensor::Ones({6}), 0, 0))
        << "rank " << r;
  });
}

TEST(FlatParamTest, ReshardFreesStorageAndUnshardRestores) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    Tensor p = Tensor::FromVector({1, 2, 3, 4}, {4});
    auto infos = core::BuildParamInfos({{"p", &p}});
    FlatParamHandle h("t", infos, comm::ProcessGroup(comm, r),
                      comm::ProcessGroup(), MixedPrecision{});
    h.MaterializeAndShard(false);
    ASSERT_FALSE(h.is_unsharded());
    // The unsharded flat's bytes are freed (resize_(0) semantics); the
    // module's view slot is structurally intact but unreadable.
    ASSERT_FALSE(h.unsharded_param().storage()->is_allocated());
    ASSERT_TRUE(p.SharesStorageWith(h.unsharded_param()));
    h.Unshard();
    h.UseUnshardedViews();
    ASSERT_TRUE(p.AllClose(Tensor::FromVector({1, 2, 3, 4}, {4}), 0, 0));
    h.Reshard();
    ASSERT_FALSE(h.unsharded_param().storage()->is_allocated());
    h.Unshard();  // restores again from shards
    ASSERT_TRUE(h.unsharded_param()
                    .SliceView(0, {4})
                    .AllClose(Tensor::FromVector({1, 2, 3, 4}, {4}), 0, 0));
  });
}

TEST(FlatParamTest, StaleReadAfterReshardAbortsLoudly) {
  // The paper's Sec 7.2.2 failure mode: reading a parameter whose unit was
  // resharded must fail with a storage error, not return stale values.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto comm = std::make_shared<comm::Communicator>(1);
  Tensor p = Tensor::FromVector({1, 2}, {2});
  auto infos = core::BuildParamInfos({{"p", &p}});
  FlatParamHandle h("t", infos, comm::ProcessGroup(comm, 0),
                    comm::ProcessGroup(), MixedPrecision{});
  h.MaterializeAndShard(false);
  EXPECT_DEATH((void)p.data(), "freed storage");
}

TEST(FlatParamTest, LocalShardExtentsPartitionParams) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  std::vector<std::vector<FlatParamHandle::ShardExtent>> extents(w);
  RunOnRanks(w, [&](int r) {
    Tensor p1 = Tensor::Ones({5});
    Tensor p2 = Tensor::Ones({6});
    auto infos = core::BuildParamInfos({{"p1", &p1}, {"p2", &p2}});
    FlatParamHandle h("t", infos, comm::ProcessGroup(comm, r),
                      comm::ProcessGroup(), MixedPrecision{});
    extents[r] = h.LocalShardExtents();
  });
  // Union of per-rank extents covers each param exactly once.
  for (size_t pi = 0; pi < 2; ++pi) {
    int64_t covered = 0;
    for (int r = 0; r < w; ++r) {
      covered += extents[r][pi].end - extents[r][pi].start;
    }
    EXPECT_EQ(covered, pi == 0 ? 5 : 6);
  }
}

TEST(FlatParamTest, SharedParamsDeduplicated) {
  Tensor shared = Tensor::Ones({4});
  Tensor other = Tensor::Ones({2});
  Tensor alias = shared;  // same impl in a second slot
  auto infos = core::BuildParamInfos(
      {{"emb.weight", &shared}, {"mid", &other}, {"head.weight", &alias}});
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].slots.size(), 2u);  // both slots recorded
  EXPECT_EQ(infos[1].offset, 4);
}

// ------------------------------------------------------------ construction

TEST(FsdpWrapTest, NoWrapPolicyYieldsSingleUnit) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    auto model = MakeModel(1);
    FullyShardedDataParallel fsdp(model, mesh, r, {});
    ASSERT_EQ(fsdp.state().num_units(), 1);
    ASSERT_EQ(fsdp.state().unit_name(0), "[root]");
  });
}

TEST(FsdpWrapTest, BlockPolicyCreatesUnitPerBlockPlusRoot) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    auto model = MakeModel(1);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    ASSERT_EQ(fsdp.state().num_units(), 3);  // root + 2 blocks
    ASSERT_EQ(fsdp.state().unit_name(0), "[root]");
    // Root holds the residual params (embeddings, final LN, head).
    bool found_emb = false;
    for (const auto& p : fsdp.state().unit_handle(0).params()) {
      if (p.fqn == "tok_emb.weight") found_emb = true;
    }
    ASSERT_TRUE(found_emb);
    // Blocks hold only their own params.
    for (const auto& p : fsdp.state().unit_handle(1).params()) {
      ASSERT_NE(p.fqn.find("blocks."), std::string::npos) << p.fqn;
    }
  });
}

TEST(FsdpWrapTest, SizeBasedPolicy) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    auto model = MakeModel(1);
    FsdpOptions opts;
    opts.auto_wrap_policy = core::SizeBasedPolicy(200);
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    ASSERT_GT(fsdp.state().num_units(), 2);
  });
}

TEST(FsdpWrapTest, MemoryProportionalToShardPlusLargestUnit) {
  // Paper Sec 3.2.1: peak parameter memory O(sum(psi)/F + max(psi)).
  // Block wrapping must yield a smaller max unit than whole-model wrapping.
  comm::DeviceMesh mesh(4, 4);
  RunOnRanks(4, [&](int r) {
    auto m1 = MakeModel(1);
    FullyShardedDataParallel whole(m1, mesh, r, {});
    auto m2 = MakeModel(1);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel blocks(m2, mesh, r, opts);
    int64_t whole_max = 0, block_max = 0;
    for (int u = 0; u < whole.state().num_units(); ++u) {
      whole_max = std::max(whole_max, whole.state().unit_handle(u).padded_numel());
    }
    for (int u = 0; u < blocks.state().num_units(); ++u) {
      block_max = std::max(block_max, blocks.state().unit_handle(u).padded_numel());
    }
    ASSERT_LT(block_max, whole_max);
  });
}

// -------------------------------------------------------------- deferred

TEST(DeferredInitTest, FakeModelMatchesEagerModel) {
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  auto ref = LocalAdamReference(w, /*steps=*/2, /*seed=*/42);
  RunOnRanks(w, [&](int r) {
    // Same seed, but constructed on the fake device: no real storage until
    // FSDP materializes unit by unit.
    auto model = MakeModel(42, Device::kFake);
    ASSERT_TRUE(model->HasFakeParameters());
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    optim::Adam adam(fsdp.Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 2; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      adam.Step();
    }
    for (auto& [fqn, value] : fsdp.FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at(fqn), 2e-4f, 1e-5f))
          << "rank " << r << " " << fqn;
    }
  });
}

TEST(DeferredInitTest, ShardedFootprintFarBelowReplication) {
  // After wrapping a fake-device model, total persistent storage across ALL
  // ranks is ~1x the model (each rank holds 1/W), not the W x that DDP's
  // replication requires — the paper's core memory claim.
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 50;
  cfg.max_seq = 8;
  cfg.dim = 32;
  cfg.num_heads = 4;
  cfg.num_layers = 6;
  int64_t model_bytes = 0;
  {
    nn::InitCtx probe(Device::kFake, 9);
    nn::TransformerModel probe_model(cfg, probe);
    model_bytes = probe_model.NumParameters() * 4;
  }
  const int64_t before = Storage::live_bytes();
  std::vector<std::unique_ptr<FullyShardedDataParallel>> fsdps(w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx local_fake(Device::kFake, 9);
    auto model = std::make_shared<nn::TransformerModel>(cfg, local_fake);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    opts.sync_module_states = false;
    fsdps[r] =
        std::make_unique<FullyShardedDataParallel>(model, mesh, r, opts);
  });
  const int64_t total = Storage::live_bytes() - before;
  EXPECT_LT(total, model_bytes * 3 / 2)
      << "sharded total " << total << " vs model " << model_bytes;
  EXPECT_GT(total, model_bytes / 2);  // the shards really are there
  // And the materialized values match an eager build of the same seed.
  nn::InitCtx eager(Device::kCpu, 9);
  nn::TransformerModel ref(cfg, eager);
  std::map<std::string, Tensor> ref_params;
  for (auto& [name, slot] : ref.NamedParameters()) ref_params[name] = *slot;
  RunOnRanks(w, [&](int r) {
    for (auto& [fqn, value] : fsdps[r]->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref_params.at(fqn), 0, 0)) << fqn;
    }
  });
}

// ------------------------------------------------------------ mixed precision

TEST(MixedPrecisionTest, UnshardedParamsAreQuantized) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(3);
    FsdpOptions opts;
    opts.mixed_precision.param_dtype = DType::kBF16;
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    auto& h = fsdp.state().unit_handle(0);
    h.Unshard();
    ASSERT_EQ(h.unsharded_param().dtype(), DType::kBF16);
    // Every gathered value must be exactly bf16-representable.
    const float* p = h.unsharded_param().data();
    for (int64_t i = 0; i < h.padded_numel(); ++i) {
      ASSERT_EQ(p[i], QuantizeBF16(p[i]));
    }
    // Sharded master copy stays full precision (may not be representable).
    ASSERT_EQ(h.sharded_param().dtype(), DType::kF32);
  });
}

TEST(MixedPrecisionTest, Bf16TrainingTracksFp32Loosely) {
  const int w = 2;
  auto ref = LocalAdamReference(w, 2, 42);
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    opts.mixed_precision.param_dtype = DType::kBF16;
    opts.mixed_precision.reduce_dtype = DType::kBF16;
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    optim::Adam adam(fsdp.Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 2; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      ASSERT_FALSE(std::isnan(loss.item()));
      autograd::RunBackward(loss);
      adam.Step();
    }
    // BF16 keeps ~2-3 significant digits: expect loose agreement.
    for (auto& [fqn, value] : fsdp.FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.at(fqn), 5e-2f, 5e-2f))
          << "rank " << r << " " << fqn;
    }
  });
}

TEST(MixedPrecisionTest, Fp16WithShardedScalerTrains) {
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(5);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    opts.mixed_precision.param_dtype = DType::kF16;
    opts.mixed_precision.reduce_dtype = DType::kF16;
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    optim::Adam adam(fsdp.Parameters(), {.lr = 1e-2f});
    optim::ShardedGradScaler scaler(mesh.WorldGroup(r),
                                    {.init_scale = 1024.f});
    float first = 0, last = 0;
    for (int s = 0; s < 10; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      if (s == 0) first = loss.item();
      last = loss.item();
      autograd::RunBackward(scaler.ScaleLoss(loss));
      scaler.Step(adam);
    }
    ASSERT_LT(last, first);
  });
}

// ------------------------------------------------- prefetching & rate limit

// Position of the first typed event matching (kind, unit) in the schedule
// log, -1 if absent. Schedule assertions work on the typed log; the string
// events() view stays covered by the wrapper/functional equivalence tests.
int IndexOf(const std::vector<obs::TraceEvent>& events, obs::EventKind kind,
            const std::string& unit) {
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == kind && events[i].unit == unit) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool HasKind(const std::vector<obs::TraceEvent>& events,
             obs::EventKind kind) {
  for (const auto& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

TEST(PrefetchTest, BackwardPrefetchReordersAllGatherBeforeReduceScatter) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  for (bool prefetch : {false, true}) {
    RunOnRanks(w, [&](int r) {
      auto model = MakeModel(1);
      FsdpOptions opts;
      opts.auto_wrap_policy = BlockPolicy();
      opts.backward_prefetch = prefetch;
      FullyShardedDataParallel fsdp(model, mesh, r, opts);
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      fsdp.state().ClearEvents();
      autograd::RunBackward(loss);
      const auto& ev = fsdp.trace_events();
      // Backward visits blocks.1 then blocks.0. With prefetching the AG for
      // blocks.0 must precede the RS for blocks.1 (paper Sec 3.3.2).
      const int ag0 = IndexOf(ev, obs::EventKind::kAllGather, "blocks.0");
      const int rs1 = IndexOf(ev, obs::EventKind::kReduceScatter, "blocks.1");
      ASSERT_NE(ag0, -1);
      ASSERT_NE(rs1, -1);
      if (prefetch) {
        ASSERT_LT(ag0, rs1) << "prefetch should issue AG before RS";
      } else {
        ASSERT_GT(ag0, rs1) << "without prefetch AG follows RS";
      }
    });
  }
}

TEST(PrefetchTest, ForwardPrefetchIssuesNextAllGatherBeforeCompute) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(1);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    opts.forward_prefetch = true;
    opts.limit_all_gathers = 8;  // don't throttle this test
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    // Iteration 1: no recorded order yet -> no forward prefetch.
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    fsdp.state().ClearEvents();
    // Iteration 2: prefetch uses iteration 1's order.
    loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)), RankTargets(r));
    const auto& ev = fsdp.trace_events();
    const int ag_b1 = IndexOf(ev, obs::EventKind::kAllGather, "blocks.1");
    const int fwd_b0 = IndexOf(ev, obs::EventKind::kForward, "blocks.0");
    ASSERT_NE(ag_b1, -1);
    ASSERT_NE(fwd_b0, -1);
    ASSERT_LT(ag_b1, fwd_b0)
        << "forward prefetch must issue next AG before current compute";
    autograd::RunBackward(loss);
  });
}

TEST(RateLimiterTest, CapsInflightUnshards) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  for (int limit : {1, 2, 8}) {
    RunOnRanks(w, [&](int r) {
      nn::InitCtx ctx(Device::kCpu, 2);
      nn::TransformerConfig cfg;
      cfg.vocab_size = 13;
      cfg.max_seq = 4;
      cfg.dim = 8;
      cfg.num_heads = 2;
      cfg.num_layers = 4;  // more units -> more prefetch pressure
      auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
      FsdpOptions opts;
      opts.auto_wrap_policy = BlockPolicy();
      opts.forward_prefetch = true;
      opts.backward_prefetch = true;
      opts.limit_all_gathers = limit;
      FullyShardedDataParallel fsdp(model, mesh, r, opts);
      for (int s = 0; s < 3; ++s) {
        Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                        RankTargets(r));
        autograd::RunBackward(loss);
      }
      ASSERT_LE(fsdp.state().max_inflight_unshards(), std::max(limit, 1));
      if (limit == 1) {
        ASSERT_GT(fsdp.state().throttled_prefetches(), 0)
            << "a tight limit must actually throttle";
      }
    });
  }
}

// ----------------------------------------------------- gradient accumulation

TEST(GradAccumulationTest, NoSyncSkipsCommunicationAndKeepsUnshardedGrads) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(6);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    fsdp.state().ClearEvents();
    {
      core::FsdpNoSyncGuard guard(fsdp);
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
    }
    // No ReduceScatter events; unsharded grads retained.
    ASSERT_FALSE(HasKind(fsdp.trace_events(),
                         obs::EventKind::kReduceScatter));
    ASSERT_TRUE(fsdp.state().unit_handle(1).unsharded_param().grad().defined());
    ASSERT_FALSE(fsdp.state().unit_handle(1).sharded_param().grad().defined());
    // Sync iteration reduces the accumulated total.
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    ASSERT_TRUE(fsdp.state().unit_handle(1).sharded_param().grad().defined());
    ASSERT_FALSE(fsdp.state().unit_handle(1).unsharded_param().grad().defined());
  });
}

TEST(GradAccumulationTest, AccumulatedGradsMatchLocal) {
  const int w = 2;
  // Local: two rounds of mean-over-ranks loss accumulation.
  auto model_ref = MakeModel(42);
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < w; ++r) {
      Tensor loss = ops::CrossEntropy(
          (*model_ref)(RankTokens(r + w * round)), RankTargets(r));
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / w));
    }
  }
  std::map<std::string, Tensor> ref;
  for (auto& [name, slot] : model_ref->NamedParameters()) {
    ref[name] = slot->grad();
  }

  comm::DeviceMesh mesh(w, w);
  // Mode A: accumulation WITHOUT communication (no_sync), Sec 3.3.4.
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    {
      core::FsdpNoSyncGuard guard(fsdp);
      Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
    }
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r + w)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    for (int u = 0; u < fsdp.state().num_units(); ++u) {
      for (auto& [fqn, grad] : fsdp.state().unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.AllClose(ref.at(fqn), 1e-4f, 1e-5f))
            << "no-comm accumulation: " << fqn;
      }
    }
  });
  // Mode B: accumulation WITH communication (two synced backwards).
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    for (int round = 0; round < 2; ++round) {
      Tensor loss = ops::CrossEntropy(
          fsdp.Forward(RankTokens(r + w * round)), RankTargets(r));
      autograd::RunBackward(loss);
    }
    for (int u = 0; u < fsdp.state().num_units(); ++u) {
      for (auto& [fqn, grad] : fsdp.state().unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.AllClose(ref.at(fqn), 1e-4f, 1e-5f))
            << "with-comm accumulation: " << fqn;
      }
    }
  });
}

// ------------------------------------------------------------- edge cases

TEST(FsdpEdgeTest, ReshardAfterForwardFreesInnerUnitParams) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(8);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor logits = fsdp.Forward(RankTokens(r));
    // Inner units resharded -> their unsharded storage is freed.
    ASSERT_FALSE(fsdp.state().unit_handle(1).is_unsharded());
    ASSERT_FALSE(
        fsdp.state().unit_handle(1).unsharded_param().storage()->is_allocated());
    // Root kept unsharded (paper Sec 3.3.1).
    ASSERT_TRUE(fsdp.state().unit_handle(0).is_unsharded());
    // Despite the poison, backward re-gathers and produces finite grads.
    autograd::RunBackward(
        ops::CrossEntropy(logits, RankTargets(r)));
    for (auto& [fqn, grad] : fsdp.state().unit_handle(1).GatherFullGrads()) {
      ASSERT_FALSE(grad.HasNonFinite()) << fqn;
    }
  });
}

TEST(FsdpEdgeTest, ShardGradOpKeepsParamsUnshardedUntilBackward) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(8);
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kShardGradOp;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor logits = fsdp.Forward(RankTokens(r));
    ASSERT_TRUE(fsdp.state().unit_handle(1).is_unsharded());  // NRAF
    fsdp.state().ClearEvents();
    autograd::RunBackward(ops::CrossEntropy(logits, RankTargets(r)));
    // No AllGather needed in backward (params stayed resident)...
    ASSERT_FALSE(HasKind(fsdp.trace_events(), obs::EventKind::kAllGather));
    // ...but everything is resharded afterwards.
    ASSERT_FALSE(fsdp.state().unit_handle(1).is_unsharded());
  });
}

TEST(FsdpEdgeTest, MultipleForwardsBeforeBackward) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(9);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor l1 = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                  RankTargets(r));
    Tensor l2 = ops::CrossEntropy(fsdp.Forward(RankTokens(r + 1)),
                                  RankTargets(r + 1));
    autograd::RunBackward(l1);
    autograd::RunBackward(l2);
    // Both backwards reduced into the sharded grad.
    ASSERT_TRUE(fsdp.state().unit_handle(0).sharded_param().grad().defined());
  });
}

TEST(FsdpEdgeTest, UnusedUnitGetsNoGradient) {
  // Forward through the model but compute a loss that ignores the logits of
  // the lm_head... simplest: backward from a sub-expression that only uses
  // one block's output is not expressible here, so instead check a unit
  // whose parameters are genuinely unused: wrap a model and run backward on
  // a loss built from an intermediate constant.
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(10);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor logits = fsdp.Forward(RankTokens(r));
    (void)logits;
    // Loss detached from the model: no unit receives gradients; the next
    // iteration must still work (no stale pending state).
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    ASSERT_TRUE(fsdp.state().unit_handle(0).sharded_param().grad().defined());
  });
}

TEST(FsdpEdgeTest, TinyUnitMoreRanksThanElements) {
  // A 3-element parameter sharded 8 ways: padding fills 5 slots.
  const int w = 8;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 4);
    auto lin = std::make_shared<nn::Linear>(3, 1, /*bias=*/false, ctx);
    FullyShardedDataParallel fsdp(lin, mesh, r, {});
    ASSERT_EQ(fsdp.state().unit_handle(0).shard_numel(), 1);
    ASSERT_EQ(fsdp.state().unit_handle(0).padding_numel(), 5);
    Rng rng(1, 0);
    Tensor x = Tensor::Randn({4, 3}, rng);
    Tensor loss = ops::Sum(fsdp.Forward(x));
    autograd::RunBackward(loss);
    auto grads = fsdp.state().unit_handle(0).GatherFullGrads();
    ASSERT_TRUE(grads[0].second.defined());
    ASSERT_FALSE(grads[0].second.HasNonFinite());
  });
}

TEST(FsdpEdgeTest, StateDictSaveLoadRoundTrip) {
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(11);
    FsdpOptions opts;
    opts.auto_wrap_policy = BlockPolicy();
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    auto saved = fsdp.FullStateDict();
    // Perturb, then load back.
    for (Tensor& p : fsdp.Parameters()) p.Fill_(0.f);
    fsdp.LoadFullStateDict(saved);
    auto restored = fsdp.FullStateDict();
    ASSERT_EQ(saved.size(), restored.size());
    for (size_t i = 0; i < saved.size(); ++i) {
      ASSERT_TRUE(restored[i].second.AllClose(saved[i].second, 0, 0))
          << saved[i].first;
    }
    // And the model still trains after the round trip.
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    ASSERT_FALSE(std::isnan(loss.item()));
    autograd::RunBackward(loss);
  });
}

TEST(FsdpEdgeTest, ShardedStateDictHoldsOnlyLocalShards) {
  const int w = 4;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(12);
    FullyShardedDataParallel fsdp(model, mesh, r, {});
    auto sharded = fsdp.ShardedStateDict();
    ASSERT_EQ(sharded.size(), 1u);
    ASSERT_EQ(sharded[0].second.numel(),
              fsdp.state().unit_handle(0).shard_numel());
  });
}

// ------------------------------------------- documented limitations (Sec 7.2)

TEST(FsdpLimitationTest, SharedParamAcrossUnitsFailsUnderFullShard) {
  // Two Linears sharing one weight, each its own FSDP unit. Under FULL_SHARD
  // the first unit's reshard frees the shared weight's storage before the
  // second unit uses it -> the "missing tensor storage" error of Sec 7.2.2.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int w = 2;
  comm::DeviceMesh mesh(w, w);

  struct TiedModel : nn::Module {
    std::shared_ptr<nn::Linear> first, second;
    explicit TiedModel(nn::InitCtx& ctx) {
      first = std::make_shared<nn::Linear>(4, 4, false, ctx);
      second = std::make_shared<nn::Linear>(4, 4, false, ctx);
      // Tie: second's weight slot aliases first's weight tensor.
      *second->NamedParameters()[0].second =
          *first->NamedParameters()[0].second;
      RegisterModule("first", first);
      RegisterModule("second", second);
    }
    Tensor Forward(const Tensor& x) override {
      return (*second)((*first)(x));
    }
    std::string TypeName() const override { return "TiedModel"; }
  };

  EXPECT_DEATH(
      RunOnRanks(w,
                 [&](int r) {
                   nn::InitCtx ctx(Device::kCpu, 13);
                   auto model = std::make_shared<TiedModel>(ctx);
                   FsdpOptions opts;
                   opts.strategy = ShardingStrategy::kFullShard;
                   opts.auto_wrap_policy =
                       core::ModuleTypePolicy({"Linear"});
                   FullyShardedDataParallel fsdp(model, mesh, r, opts);
                   Rng rng(1, 0);
                   Tensor out = fsdp.Forward(Tensor::Randn({2, 4}, rng));
                   (void)out;
                 }),
      "freed storage");
}

TEST(FsdpLimitationTest, ShardGradOpFixesSharedParamAcrossUnits) {
  // The paper's first suggested mitigation: SHARD_GRAD_OP keeps parameters
  // unsharded through the backward, so the aliased weight stays live.
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  struct TiedModel : nn::Module {
    std::shared_ptr<nn::Linear> first, second;
    explicit TiedModel(nn::InitCtx& ctx) {
      first = std::make_shared<nn::Linear>(4, 4, false, ctx);
      second = std::make_shared<nn::Linear>(4, 4, false, ctx);
      *second->NamedParameters()[0].second =
          *first->NamedParameters()[0].second;
      RegisterModule("first", first);
      RegisterModule("second", second);
    }
    Tensor Forward(const Tensor& x) override {
      return (*second)((*first)(x));
    }
    std::string TypeName() const override { return "TiedModel"; }
  };
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 13);
    auto model = std::make_shared<TiedModel>(ctx);
    FsdpOptions opts;
    opts.strategy = ShardingStrategy::kShardGradOp;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"Linear"});
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Rng rng(1, 0);
    Tensor out = fsdp.Forward(Tensor::Randn({2, 4}, rng));
    ASSERT_FALSE(out.HasNonFinite());
    autograd::RunBackward(ops::Sum(out));
  });
}

TEST(FsdpLimitationTest, ConsolidatingSharedParamsIntoOneUnitWorks) {
  // The paper's second mitigation: keep the sharing modules in ONE unit
  // (here: no auto-wrap, single root unit).
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  struct TiedModel : nn::Module {
    std::shared_ptr<nn::Linear> first, second;
    explicit TiedModel(nn::InitCtx& ctx) {
      first = std::make_shared<nn::Linear>(4, 4, false, ctx);
      second = std::make_shared<nn::Linear>(4, 4, false, ctx);
      *second->NamedParameters()[0].second =
          *first->NamedParameters()[0].second;
      RegisterModule("first", first);
      RegisterModule("second", second);
    }
    Tensor Forward(const Tensor& x) override {
      return (*second)((*first)(x));
    }
    std::string TypeName() const override { return "TiedModel"; }
  };
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 13);
    auto model = std::make_shared<TiedModel>(ctx);
    FullyShardedDataParallel fsdp(model, mesh, r, {});  // single unit
    // Shared weight occupies one flat region with two slots.
    ASSERT_EQ(fsdp.state().unit_handle(0).params().size(), 1u);
    ASSERT_EQ(fsdp.state().unit_handle(0).params()[0].slots.size(), 2u);
    Rng rng(1, 0);
    Tensor x = Tensor::Randn({2, 4}, rng);
    Tensor out = fsdp.Forward(x);
    ASSERT_FALSE(out.HasNonFinite());
    autograd::RunBackward(ops::Sum(out));
    ASSERT_TRUE(fsdp.state().unit_handle(0).sharded_param().grad().defined());
  });
}

}  // namespace
}  // namespace fsdp
