// Unit tests for the tensor core: dtypes, storage, views, in-place math.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/dtype.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

TEST(DTypeTest, Sizes) {
  EXPECT_EQ(SizeOf(DType::kF32), 4);
  EXPECT_EQ(SizeOf(DType::kBF16), 2);
  EXPECT_EQ(SizeOf(DType::kF16), 2);
  EXPECT_EQ(SizeOf(DType::kI64), 8);
}

TEST(DTypeTest, BF16RoundTripExactValues) {
  // Powers of two and small integers are exactly representable.
  for (float v : {0.f, 1.f, -1.f, 0.5f, 2.f, 256.f, -1024.f}) {
    EXPECT_EQ(QuantizeBF16(v), v) << v;
  }
}

TEST(DTypeTest, BF16RoundsMantissa) {
  // BF16 keeps 7 explicit mantissa bits: 1 + 2^-9 rounds to 1 (RNE).
  const float v = 1.f + std::ldexp(1.f, -9);
  EXPECT_EQ(QuantizeBF16(v), 1.f);
  // 1 + 2^-7 is representable.
  const float w = 1.f + std::ldexp(1.f, -7);
  EXPECT_EQ(QuantizeBF16(w), w);
  // Relative error bounded by 2^-8 (half ULP).
  Rng rng(7, 0);
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.NextNormal(0, 100));
    const float q = QuantizeBF16(x);
    EXPECT_LE(std::fabs(q - x), std::fabs(x) * (1.f / 256.f) + 1e-30f);
  }
}

TEST(DTypeTest, BF16NoOverflow) {
  // BF16 shares FP32's exponent: huge values stay finite.
  EXPECT_TRUE(std::isfinite(QuantizeBF16(1e38f)));
  EXPECT_TRUE(std::isinf(QuantizeBF16(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isnan(QuantizeBF16(std::nanf(""))));
}

TEST(DTypeTest, F16ExactValues) {
  for (float v : {0.f, 1.f, -1.f, 0.5f, 1024.f, 65504.f, -65504.f}) {
    EXPECT_EQ(QuantizeF16(v), v) << v;
  }
}

TEST(DTypeTest, F16OverflowsToInf) {
  // The narrow FP16 range is what motivates the gradient scaler (Sec 4.4).
  EXPECT_TRUE(std::isinf(QuantizeF16(65536.f)));
  EXPECT_TRUE(std::isinf(QuantizeF16(1e10f)));
  EXPECT_TRUE(QuantizeF16(-1e10f) < 0);
  EXPECT_TRUE(std::isinf(QuantizeF16(-1e10f)));
  EXPECT_EQ(QuantizeF16(65504.f), 65504.f);  // max finite survives
}

TEST(DTypeTest, F16Subnormals) {
  // Smallest FP16 subnormal is 2^-24; half of it rounds to zero.
  const float sub = std::ldexp(1.f, -24);
  EXPECT_EQ(QuantizeF16(sub), sub);
  EXPECT_EQ(QuantizeF16(std::ldexp(1.f, -26)), 0.f);
  // A normal-range value keeps 10 mantissa bits.
  const float v = 1.f + std::ldexp(1.f, -10);
  EXPECT_EQ(QuantizeF16(v), v);
  EXPECT_EQ(QuantizeF16(1.f + std::ldexp(1.f, -12)), 1.f);
}

TEST(DTypeTest, F16RelativeErrorBound) {
  Rng rng(11, 0);
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.NextUniform(-1000, 1000));
    const float q = QuantizeF16(x);
    EXPECT_LE(std::fabs(q - x), std::fabs(x) * (1.f / 1024.f) + 1e-7f) << x;
  }
}

TEST(TensorTest, FactoriesAndAccessors) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(), 2);
  EXPECT_EQ(z.size(0), 2);
  EXPECT_EQ(z.size(-1), 3);
  EXPECT_EQ(z.SumValue(), 0.f);

  Tensor o = Tensor::Ones({4});
  EXPECT_EQ(o.SumValue(), 4.f);

  Tensor f = Tensor::Full({2, 2}, 3.5f);
  EXPECT_EQ(f.at({1, 1}), 3.5f);
  f.set_at({0, 1}, -1.f);
  EXPECT_EQ(f.at({0, 1}), -1.f);

  Tensor v = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_EQ(v.at({1, 2}), 6.f);
  EXPECT_EQ(v.nbytes(), 24);
}

TEST(TensorTest, RandnIsReproducible) {
  Rng rng1(42, 0), rng2(42, 0);
  Tensor a = Tensor::Randn({100}, rng1);
  Tensor b = Tensor::Randn({100}, rng2);
  fsdp::testing::ExpectAllClose(a, b, 0, 0);
  // Roughly standard normal.
  EXPECT_LT(std::fabs(a.SumValue() / 100.f), 0.5f);
}

TEST(TensorTest, ViewsShareStorage) {
  Tensor base = Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7}, {8});
  Tensor window = base.SliceView(2, {2, 2});
  EXPECT_TRUE(window.SharesStorageWith(base));
  EXPECT_EQ(window.at({0, 0}), 2.f);
  window.set_at({1, 1}, 99.f);
  EXPECT_EQ(base.at({5}), 99.f);  // writes propagate to base

  Tensor reshaped = base.ViewAs({2, 4});
  EXPECT_TRUE(reshaped.SharesStorageWith(base));
  Tensor cloned = base.Clone();
  EXPECT_FALSE(cloned.SharesStorageWith(base));
}

TEST(TensorTest, CastQuantizes) {
  Tensor t = Tensor::FromVector({1.0009765625f, 70000.f, 1.f}, {3});
  Tensor h = t.CastTo(DType::kF16);
  EXPECT_EQ(h.dtype(), DType::kF16);
  EXPECT_EQ(h.at({0}), 1.0009765625f);       // representable
  EXPECT_TRUE(std::isinf(h.at({1})));        // overflow
  EXPECT_EQ(h.nbytes(), 6);                  // 2 bytes/elem accounting

  Tensor b = t.CastTo(DType::kBF16);
  EXPECT_EQ(b.at({0}), 1.f);                 // mantissa dropped
  EXPECT_TRUE(std::isfinite(b.at({1})));     // wide exponent
}

TEST(TensorTest, InPlaceMath) {
  Tensor a = Tensor::FromVector({1, 2, 3}, {3});
  Tensor b = Tensor::FromVector({10, 20, 30}, {3});
  a.Add_(b, 0.5f);
  fsdp::testing::ExpectAllClose(a, Tensor::FromVector({6, 12, 18}, {3}));
  a.Mul_(2.f);
  EXPECT_EQ(a.at({2}), 36.f);
  a.Lerp_(b, 1.f);
  fsdp::testing::ExpectAllClose(a, b);

  Tensor c = Tensor::Zeros({3});
  c.Addcmul_(a, b, 0.1f);  // 0 + 0.1*b*b
  EXPECT_NEAR(c.at({1}), 40.f, 1e-3f);

  Tensor d = Tensor::Ones({3});
  Tensor num = Tensor::FromVector({4, 9, 16}, {3});
  Tensor den = Tensor::FromVector({4, 9, 16}, {3});
  d.AddcdivSqrt_(num, den, 1.f, 0.f);  // 1 + v/sqrt(v)
  fsdp::testing::ExpectAllClose(d, Tensor::FromVector({3, 4, 5}, {3}));
}

TEST(TensorTest, NonFiniteDetection) {
  Tensor t = Tensor::Ones({4});
  EXPECT_FALSE(t.HasNonFinite());
  t.set_at({2}, std::numeric_limits<float>::infinity());
  EXPECT_TRUE(t.HasNonFinite());
  t.set_at({2}, std::nanf(""));
  EXPECT_TRUE(t.HasNonFinite());
}

TEST(TensorTest, FakeDeviceHasNoData) {
  Tensor t = Tensor::Empty({1000000}, DType::kF32, Device::kFake);
  EXPECT_EQ(t.device(), Device::kFake);
  EXPECT_EQ(t.numel(), 1000000);
  EXPECT_DEATH(t.data(), "fake");
}

TEST(TensorTest, LiveBytesTracksAllocations) {
  const int64_t before = Storage::live_bytes();
  {
    Tensor t = Tensor::Zeros({1024});
    EXPECT_EQ(Storage::live_bytes(), before + 4096);
    Tensor view = t.SliceView(0, {512});  // no new storage
    EXPECT_EQ(Storage::live_bytes(), before + 4096);
  }
  EXPECT_EQ(Storage::live_bytes(), before);
}

TEST(TensorTest, QuantizeInPlace) {
  Tensor t = Tensor::Empty({2}, DType::kBF16);
  t.data()[0] = 1.0009765625f;
  t.QuantizeInPlace_();
  EXPECT_EQ(t.data()[0], 1.f);
}

TEST(KernelsTest, GemmAllTransposeVariants) {
  // A (2x3), B (3x2): C = A@B known.
  const std::vector<float> a = {1, 2, 3, 4, 5, 6};
  const std::vector<float> at = {1, 4, 2, 5, 3, 6};
  const std::vector<float> b = {7, 8, 9, 10, 11, 12};
  const std::vector<float> bt = {7, 9, 11, 8, 10, 12};
  const std::vector<float> expect = {58, 64, 139, 154};

  float c[4];
  kernels::Gemm(a.data(), b.data(), c, 2, 2, 3, false, false, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], expect[i]);
  kernels::Gemm(at.data(), b.data(), c, 2, 2, 3, true, false, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], expect[i]);
  kernels::Gemm(a.data(), bt.data(), c, 2, 2, 3, false, true, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], expect[i]);
  kernels::Gemm(at.data(), bt.data(), c, 2, 2, 3, true, true, false);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], expect[i]);
  // Accumulate doubles the result.
  kernels::Gemm(a.data(), b.data(), c, 2, 2, 3, false, false, true);
  EXPECT_FLOAT_EQ(c[0], 2 * expect[0]);
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  Rng rng(3, 0);
  Tensor x = Tensor::Randn({5, 7}, rng);
  Tensor y = Tensor::Empty({5, 7});
  kernels::SoftmaxRows(x.data(), y.data(), 5, 7);
  for (int64_t r = 0; r < 5; ++r) {
    double s = 0;
    for (int64_t c = 0; c < 7; ++c) {
      const float v = y.at({r, c});
      EXPECT_GT(v, 0.f);
      s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(KernelsTest, SoftmaxNumericallyStable) {
  Tensor x = Tensor::FromVector({1000.f, 1001.f}, {1, 2});
  Tensor y = Tensor::Empty({1, 2});
  kernels::SoftmaxRows(x.data(), y.data(), 1, 2);
  EXPECT_FALSE(y.HasNonFinite());
  EXPECT_NEAR(y.at({0, 1}), 1.f / (1.f + std::exp(-1.f)), 1e-5f);
}

TEST(KernelsTest, LayerNormNormalizesRows) {
  Rng rng(5, 0);
  Tensor x = Tensor::Randn({4, 16}, rng, 3.f, 2.f);
  Tensor gamma = Tensor::Ones({16});
  Tensor beta = Tensor::Zeros({16});
  Tensor out = Tensor::Empty({4, 16});
  Tensor mean = Tensor::Empty({4});
  Tensor rstd = Tensor::Empty({4});
  kernels::LayerNormForward(x.data(), gamma.data(), beta.data(), out.data(),
                            mean.data(), rstd.data(), 4, 16, 1e-5f);
  for (int64_t r = 0; r < 4; ++r) {
    double m = 0, v = 0;
    for (int64_t c = 0; c < 16; ++c) m += out.at({r, c});
    m /= 16;
    for (int64_t c = 0; c < 16; ++c) {
      const double d = out.at({r, c}) - m;
      v += d * d;
    }
    EXPECT_NEAR(m, 0.0, 1e-5);
    EXPECT_NEAR(v / 16, 1.0, 1e-3);
  }
}

TEST(KernelsTest, CrossEntropyMatchesManual) {
  // Two rows, 3 classes, uniform logits -> loss = log(3).
  Tensor logits = Tensor::Zeros({2, 3});
  std::vector<int64_t> targets = {0, 2};
  Tensor log_probs = Tensor::Empty({2, 3});
  const float loss = kernels::CrossEntropyForward(
      logits.data(), targets.data(), log_probs.data(), 2, 3);
  EXPECT_NEAR(loss, std::log(3.f), 1e-5f);
}

TEST(KernelsTest, EmbeddingGatherScatterRoundTrip) {
  Tensor table = Tensor::FromVector({1, 2, 3, 4, 5, 6}, {3, 2});
  std::vector<int64_t> idx = {2, 0, 2};
  Tensor out = Tensor::Empty({3, 2});
  kernels::EmbeddingGather(table.data(), idx.data(), out.data(), 3, 2);
  EXPECT_EQ(out.at({0, 0}), 5.f);
  EXPECT_EQ(out.at({1, 1}), 2.f);

  Tensor grad_table = Tensor::Zeros({3, 2});
  Tensor grad_out = Tensor::Ones({3, 2});
  kernels::EmbeddingScatterAdd(grad_out.data(), idx.data(), grad_table.data(),
                               3, 2);
  EXPECT_EQ(grad_table.at({2, 0}), 2.f);  // index 2 hit twice
  EXPECT_EQ(grad_table.at({0, 0}), 1.f);
  EXPECT_EQ(grad_table.at({1, 0}), 0.f);
}

}  // namespace
}  // namespace fsdp
