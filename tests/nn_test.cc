// nn module tests: registration/traversal, layer forward/backward shapes,
// deferred-init recording, and end-to-end trainability of each model family.
#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "nn/dhen.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::CheckGradients;
using fsdp::testing::ExpectAllClose;

TEST(ModuleTest, ParameterRegistryAndTraversal) {
  nn::InitCtx ctx(Device::kCpu, 1);
  auto mlp = std::make_shared<nn::MLP>(4, 8, ctx);
  auto named = mlp->NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[1].first, "fc1.bias");
  EXPECT_EQ(named[2].first, "fc2.weight");
  EXPECT_EQ(named[3].first, "fc2.bias");
  EXPECT_EQ(mlp->NumParameters(), 4 * 8 + 8 + 8 * 4 + 4);

  auto modules = mlp->NamedModules();
  ASSERT_EQ(modules.size(), 3u);
  EXPECT_EQ(modules[0].first, "");
  EXPECT_EQ(modules[1].first, "fc1");
  EXPECT_EQ(modules[1].second->TypeName(), "Linear");
}

TEST(ModuleTest, ParameterSlotSwapPropagates) {
  // The mechanism FSDP uses: replacing the slot's Tensor changes what the
  // module computes with.
  nn::InitCtx ctx(Device::kCpu, 1);
  auto lin = std::make_shared<nn::Linear>(2, 2, /*bias=*/false, ctx);
  Tensor* slot = lin->NamedParameters()[0].second;
  *slot = Tensor::FromVector({1, 0, 0, 1}, {2, 2});  // identity
  Tensor x = Tensor::FromVector({3, 4}, {1, 2});
  Tensor y = (*lin)(x);
  ExpectAllClose(y, x, 0, 0);
}

TEST(ModuleTest, ForwardHooksRunInOrderAndCanReplace) {
  nn::InitCtx ctx(Device::kCpu, 1);
  auto relu = std::make_shared<nn::Relu>();
  std::vector<int> order;
  relu->RegisterForwardPreHook([&](nn::Module&, const Tensor& in) {
    order.push_back(1);
    Tensor shifted = in.Clone();
    shifted.Add_(Tensor::Ones(in.shape()), 5.f);  // make all positive
    return shifted;
  });
  relu->RegisterForwardPostHook(
      [&](nn::Module&, const Tensor&, const Tensor& out) {
        order.push_back(2);
        Tensor doubled = out.Clone();
        doubled.Mul_(2.f);
        return doubled;
      });
  Tensor y = (*relu)(Tensor::FromVector({-1, 2}, {2}));
  ASSERT_EQ(order.size(), 2u);
  ExpectAllClose(y, Tensor::FromVector({8, 14}, {2}), 0, 0);
}

TEST(ModuleTest, HookRemoval) {
  auto relu = std::make_shared<nn::Relu>();
  int fired = 0;
  int h = relu->RegisterForwardPreHook([&](nn::Module&, const Tensor&) {
    ++fired;
    return Tensor();
  });
  (*relu)(Tensor::Ones({2}));
  relu->RemoveForwardPreHook(h);
  (*relu)(Tensor::Ones({2}));
  EXPECT_EQ(fired, 1);
}

TEST(InitTest, DeferredRecordingAndReplayMatchesEager) {
  // Same seed: eager init and fake-device record/replay must agree bitwise —
  // the property FSDP's deferred initialization relies on (Sec 3.1).
  nn::InitCtx eager(Device::kCpu, 77);
  nn::InitCtx fake(Device::kFake, 77);
  Tensor e1 = eager.Normal({4, 3}, 0.f, 0.02f);
  Tensor e2 = eager.Uniform({5}, -1.f, 1.f);

  Tensor f1 = fake.Normal({4, 3}, 0.f, 0.02f);
  Tensor f2 = fake.Uniform({5}, -1.f, 1.f);
  EXPECT_EQ(f1.device(), Device::kFake);

  // Replay out of order: stream-per-parameter makes order irrelevant.
  nn::InitOp op2, op1;
  ASSERT_TRUE(nn::InitRecorder::Lookup(f2, &op2));
  ASSERT_TRUE(nn::InitRecorder::Lookup(f1, &op1));
  Tensor r2 = Tensor::Empty({5});
  Tensor r1 = Tensor::Empty({4, 3});
  nn::ExecuteInitOp(op2, r2);
  nn::ExecuteInitOp(op1, r1);
  ExpectAllClose(r1, e1, 0, 0);
  ExpectAllClose(r2, e2, 0, 0);
  nn::InitRecorder::Erase(f1);
  nn::InitRecorder::Erase(f2);
}

TEST(InitTest, FakeModelAllocatesNoStorage) {
  const int64_t before = Storage::live_bytes();
  nn::InitCtx fake(Device::kFake, 1);
  nn::TransformerConfig cfg;
  cfg.dim = 64;
  cfg.num_layers = 4;
  auto model = std::make_shared<nn::TransformerModel>(cfg, fake);
  EXPECT_TRUE(model->HasFakeParameters());
  EXPECT_EQ(Storage::live_bytes(), before);  // zero real bytes
  EXPECT_GT(model->NumParameters(), 100000);
}

TEST(LayerTest, LinearMatchesManual) {
  nn::InitCtx ctx(Device::kCpu, 1);
  auto lin = std::make_shared<nn::Linear>(3, 2, /*bias=*/true, ctx);
  *lin->NamedParameters()[0].second =
      Tensor::FromVector({1, 2, 3, 4, 5, 6}, {2, 3});
  *lin->NamedParameters()[1].second = Tensor::FromVector({10, 20}, {2});
  Tensor y = (*lin)(Tensor::FromVector({1, 1, 1}, {1, 3}));
  ExpectAllClose(y, Tensor::FromVector({16, 35}, {1, 2}), 0, 0);
}

TEST(LayerTest, SequentialChains) {
  nn::InitCtx ctx(Device::kCpu, 1);
  auto seq = std::make_shared<nn::Sequential>();
  seq->Append(std::make_shared<nn::Linear>(4, 8, true, ctx));
  seq->Append(std::make_shared<nn::Relu>());
  seq->Append(std::make_shared<nn::Linear>(8, 2, true, ctx));
  Rng rng(1, 0);
  Tensor y = (*seq)(Tensor::Randn({5, 4}, rng));
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  // With causal masking, output at position 0 must not depend on position 1.
  nn::InitCtx ctx(Device::kCpu, 3);
  auto attn = std::make_shared<nn::MultiheadSelfAttention>(8, 2, true, ctx);
  Rng rng(2, 0);
  Tensor x1 = Tensor::Randn({1, 3, 8}, rng);
  Tensor x2 = x1.Clone().ViewAs({1, 3, 8});
  // Perturb the last position only.
  for (int64_t i = 0; i < 8; ++i) x2.set_at({0, 2, i}, 99.f);
  NoGradGuard no_grad;
  Tensor y1 = (*attn)(x1);
  Tensor y2 = (*attn)(x2);
  for (int64_t s = 0; s < 2; ++s) {
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_FLOAT_EQ(y1.at({0, s, i}), y2.at({0, s, i}))
          << "position " << s << " leaked future information";
    }
  }
  // And the last position must differ.
  EXPECT_NE(y1.at({0, 2, 0}), y2.at({0, 2, 0}));
}

TEST(AttentionTest, NonCausalAttendsEverywhere) {
  nn::InitCtx ctx(Device::kCpu, 3);
  auto attn = std::make_shared<nn::MultiheadSelfAttention>(8, 2, false, ctx);
  Rng rng(2, 0);
  Tensor x1 = Tensor::Randn({1, 3, 8}, rng);
  Tensor x2 = x1.Clone().ViewAs({1, 3, 8});
  for (int64_t i = 0; i < 8; ++i) x2.set_at({0, 2, i}, 99.f);
  NoGradGuard no_grad;
  Tensor y1 = (*attn)(x1);
  Tensor y2 = (*attn)(x2);
  EXPECT_NE(y1.at({0, 0, 0}), y2.at({0, 0, 0}));
}

TEST(AttentionTest, GradientsFlowToAllProjections) {
  nn::InitCtx ctx(Device::kCpu, 4);
  auto attn = std::make_shared<nn::MultiheadSelfAttention>(4, 2, true, ctx);
  Rng rng(5, 0);
  Tensor x = Tensor::Randn({2, 3, 4}, rng);
  Tensor loss = ops::Sum(ops::Reshape((*attn)(x), {2 * 3 * 4}));
  autograd::RunBackward(loss);
  for (auto& [name, slot] : attn->NamedParameters()) {
    EXPECT_TRUE(slot->grad().defined()) << name;
    EXPECT_GT(slot->grad().MaxAbsValue(), 0.f) << name;
  }
}

TEST(TransformerTest, ForwardShapeAndBackward) {
  nn::InitCtx ctx(Device::kCpu, 6);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 19;
  cfg.max_seq = 8;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
  Tensor tokens = ops::IndexTensor({1, 2, 3, 4, 5, 6, 7, 8}, {2, 4});
  Tensor logits = (*model)(tokens);
  EXPECT_EQ(logits.shape(), (Shape{8, 19}));
  Tensor targets = ops::IndexTensor({2, 3, 4, 5, 6, 7, 8, 9}, {8});
  Tensor loss = ops::CrossEntropy(logits, targets);
  autograd::RunBackward(loss);
  for (auto& [name, slot] : model->NamedParameters()) {
    EXPECT_TRUE(slot->grad().defined()) << name;
  }
}

TEST(TransformerTest, TrainingReducesLoss) {
  nn::InitCtx ctx(Device::kCpu, 7);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 11;
  cfg.max_seq = 6;
  cfg.dim = 16;
  cfg.num_heads = 2;
  cfg.num_layers = 1;
  auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
  std::vector<Tensor> params;
  for (Tensor* slot : model->ParameterSlots()) params.push_back(*slot);
  optim::Adam adam(params, {.lr = 1e-2f});

  Tensor tokens = ops::IndexTensor({1, 2, 3, 4, 5, 6}, {1, 6});
  Tensor targets = ops::IndexTensor({2, 3, 4, 5, 6, 7}, {6});
  float first = 0, last = 0;
  for (int step = 0; step < 30; ++step) {
    adam.ZeroGrad();
    Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
    if (step == 0) first = loss.item();
    last = loss.item();
    autograd::RunBackward(loss);
    adam.Step();
  }
  EXPECT_LT(last, first * 0.2f) << "loss did not drop: " << first << " -> "
                                << last;
}

TEST(DhenTest, DenseTowerTrains) {
  nn::InitCtx ctx(Device::kCpu, 8);
  nn::DhenConfig cfg;
  cfg.input_dim = 8;
  cfg.dim = 8;
  cfg.hidden = 16;
  cfg.num_layers = 2;
  auto tower = std::make_shared<nn::DhenDenseTower>(cfg, ctx);
  std::vector<Tensor> params;
  for (Tensor* slot : tower->ParameterSlots()) params.push_back(*slot);
  optim::SGD sgd(params, 0.1f);

  Rng rng(9, 0);
  Tensor x = Tensor::Randn({16, 8}, rng);
  Tensor y = Tensor::Zeros({16, 1});
  for (int64_t i = 0; i < 16; ++i) {
    y.set_at({i, 0}, x.at({i, 0}) > 0 ? 1.f : 0.f);
  }
  float first = 0, last = 0;
  for (int step = 0; step < 40; ++step) {
    sgd.ZeroGrad();
    Tensor loss = ops::MseLoss(ops::Sigmoid((*tower)(x)), y);
    if (step == 0) first = loss.item();
    last = loss.item();
    autograd::RunBackward(loss);
    sgd.Step();
  }
  EXPECT_LT(last, first * 0.5f);
}

TEST(DhenTest, SparseArchLooksUpPerFeature) {
  nn::InitCtx ctx(Device::kCpu, 10);
  auto sparse = std::make_shared<nn::DhenSparseArch>(
      std::vector<int64_t>{10, 20}, 4, ctx);
  EXPECT_EQ(sparse->output_dim(), 8);
  Tensor idx = ops::IndexTensor({3, 15, 0, 19}, {2, 2});
  Tensor out = (*sparse)(idx);
  EXPECT_EQ(out.shape(), (Shape{2, 8}));
  // Gradients reach both tables.
  autograd::RunBackward(ops::Sum(ops::Mul(out, out)));
  for (auto& [name, slot] : sparse->NamedParameters()) {
    EXPECT_TRUE(slot->grad().defined()) << name;
  }
}

TEST(TransformerTest, BlockIsNaturalWrapBoundary) {
  // The type-based policy the benches use must match blocks, nothing else.
  nn::InitCtx ctx(Device::kCpu, 11);
  nn::TransformerConfig cfg;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 3;
  auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
  int blocks = 0;
  for (auto& [fqn, mod] : model->NamedModules()) {
    if (mod->TypeName() == "TransformerBlock") ++blocks;
  }
  EXPECT_EQ(blocks, 3);
}

}  // namespace
}  // namespace fsdp
