// Anti-drift contract for the shared execution-plan IR (src/plan):
//
//  1. the REAL runtime's executed instruction order (FsdpState::
//     executed_schedule()) must equal the canonical projection of the plan
//     the shared PlanBuilder predicts from the same options
//     (ExpectedStepPlan()), and
//  2. the SIMULATOR-shape plan built from the same knobs (and the real unit
//     names) must project to the same canonical schedule, and be consumable
//     by simfsdp::FsdpSimulator's explicit-plan constructor.
//
// Together these pin the real schedule and the simulated schedule to one
// source of truth: a divergence in either layer breaks the string equality.
// Exercised across {full shard, hybrid, no shard} x {backward prefetch
// on/off} on a 4-rank toy transformer.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/transformer.h"
#include "plan/builder.h"
#include "plan/passes.h"
#include "plan/plan.h"
#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using core::FsdpOptions;
using core::FullyShardedDataParallel;
using core::ShardingStrategy;

constexpr int kWorld = 4;
constexpr int kLayers = 4;

nn::ModulePtr MakeModel(uint64_t seed = 7) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = kLayers;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank) {
  return ops::IndexTensor({(rank * 3 + 1) % 13, (rank * 5 + 2) % 13,
                           (rank * 7 + 3) % 13, (rank + 4) % 13},
                          {1, 4});
}

Tensor RankTargets(int rank) {
  return ops::IndexTensor({(rank + 5) % 13, (rank + 6) % 13, (rank + 7) % 13,
                           (rank + 8) % 13},
                          {4});
}

int FactorFor(ShardingStrategy s) {
  switch (s) {
    case ShardingStrategy::kNoShard: return 1;
    case ShardingStrategy::kHybridShard:
    case ShardingStrategy::kHybridShardZero2: return 2;
    default: return kWorld;
  }
}

/// One training step on all ranks; returns rank 0's executed canonical
/// schedule plus the builder plan the runtime predicts for itself.
struct StepRecord {
  std::vector<std::string> executed;
  std::vector<plan::Instr> executed_instrs;
  plan::StepPlan expected;
};

StepRecord RunRealStep(ShardingStrategy strategy, bool backward_prefetch) {
  comm::DeviceMesh mesh(kWorld, FactorFor(strategy));
  StepRecord rec;
  RunOnRanks(kWorld, [&](int r) {
    auto model = MakeModel();
    FsdpOptions opts;
    opts.strategy = strategy;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    opts.backward_prefetch = backward_prefetch;
    FullyShardedDataParallel fsdp(model, mesh, r, opts);
    Tensor loss =
        ops::CrossEntropy(fsdp.Forward(RankTokens(r)), RankTargets(r));
    autograd::RunBackward(loss);
    if (r == 0) {
      rec.executed = fsdp.state().executed_schedule();
      rec.executed_instrs = fsdp.state().executed_plan();
      rec.expected = fsdp.state().ExpectedStepPlan();
    }
  });
  return rec;
}

/// The simulator-shape plan for the same schedule knobs, over the real unit
/// names (forward order).
plan::StepPlan BuildSimShapePlan(const StepRecord& rec,
                                 ShardingStrategy strategy,
                                 bool backward_prefetch) {
  const int f = FactorFor(strategy);
  plan::FsdpPlanOptions o = plan::FsdpPlanOptions::Sim();
  o.reshard_after_forward = core::ReshardAfterForward(strategy);
  o.backward_prefetch = backward_prefetch;
  o.replica_allreduce = f < kWorld;
  o.reshard = f > 1 ? plan::ReshardPolicy::kIfGradSync
                    : plan::ReshardPolicy::kKeepUnsharded;
  return plan::BuildFsdpStepPlan(rec.expected.unit_names, o);
}

class PlanDriftTest
    : public ::testing::TestWithParam<std::tuple<ShardingStrategy, bool>> {};

TEST_P(PlanDriftTest, RealOrderMatchesBuilderAndSimulatorPlan) {
  const auto [strategy, backward_prefetch] = GetParam();
  StepRecord rec = RunRealStep(strategy, backward_prefetch);
  ASSERT_FALSE(rec.executed.empty());
  ASSERT_EQ(rec.expected.unit_names.size(), kLayers + 1u);

  // Real execution vs the runtime-shape builder plan.
  EXPECT_EQ(rec.executed, rec.expected.Canonical());

  // Every recorded and predicted plan must be structurally sound: the
  // executed-plan log this rank actually issued, the builder's prediction,
  // and the simulator-shape plan all pass the compiler's validator.
  plan::PlanValidator validator;
  plan::StepPlan executed_plan;
  executed_plan.unit_names = rec.expected.unit_names;
  executed_plan.instrs = rec.executed_instrs;
  Status st = validator.Check(executed_plan);
  EXPECT_TRUE(st.ok()) << "executed plan: " << st.message();
  st = validator.Check(rec.expected);
  EXPECT_TRUE(st.ok()) << "expected plan: " << st.message();

  // Real execution vs the simulator-shape plan over the same names. The sim
  // shape adds memory/gate instructions and splits the root compute, but its
  // canonical projection must be the same schedule.
  plan::StepPlan sim_plan = BuildSimShapePlan(rec, strategy,
                                              backward_prefetch);
  st = validator.Check(sim_plan);
  EXPECT_TRUE(st.ok()) << "sim plan: " << st.message();
  EXPECT_EQ(rec.executed, sim_plan.Canonical());

  // And the simulator must be able to interpret that exact plan (real unit
  // names and all) against a matching workload.
  simfsdp::TransformerShape shape;
  shape.name = "toy";
  shape.hidden = 64;
  shape.layers = kLayers;
  shape.heads = 2;
  shape.seq = 16;
  shape.vocab = 128;
  simfsdp::Workload w = simfsdp::MakeTransformer(shape);
  ASSERT_EQ(w.units.size(), static_cast<size_t>(kLayers));

  simfsdp::FsdpSimConfig cfg;
  cfg.sharding_factor = FactorFor(strategy);
  cfg.reshard_after_forward = core::ReshardAfterForward(strategy);
  cfg.backward_prefetch = backward_prefetch;
  cfg.limit_all_gathers = 0;  // the plan carries no gate instructions
  cfg.iterations = 2;
  simfsdp::FsdpSimulator sim(w, sim::Topology{1, kWorld}, sim::SimConstants{},
                             cfg, sim_plan);
  simfsdp::SimMetrics m = sim.Run();
  EXPECT_FALSE(m.oom);
  EXPECT_GT(m.iter_time_us, 0);
  EXPECT_GT(m.compute_busy_us, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PlanDriftTest,
    ::testing::Combine(::testing::Values(ShardingStrategy::kFullShard,
                                         ShardingStrategy::kHybridShard,
                                         ShardingStrategy::kNoShard),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string name =
          core::ShardingStrategyName(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '_') c = 'x';
      }
      return name + (std::get<1>(info.param) ? "Prefetch" : "NoPrefetch");
    });

// ------------------------------------------------ builder-level properties

TEST(PlanBuilderTest, RuntimeAndSimShapesShareCanonicalSchedule) {
  const std::vector<std::string> names{"[root]", "u1", "u2", "u3"};
  plan::StepPlan rt =
      plan::BuildFsdpStepPlan(names, plan::FsdpPlanOptions::Runtime());
  plan::StepPlan sim =
      plan::BuildFsdpStepPlan(names, plan::FsdpPlanOptions::Sim());
  EXPECT_EQ(rt.Canonical(), sim.Canonical());
  // The sim shape is strictly richer (memory instrs, split root compute).
  EXPECT_GT(sim.size(), rt.size());
}

TEST(PlanBuilderTest, DependencyEdgesPointBackward) {
  plan::FsdpPlanOptions o = plan::FsdpPlanOptions::Sim();
  o.microbatches = 3;
  o.accum = plan::AccumMode::kReduceLastMicrobatch;
  plan::StepPlan p = plan::BuildFsdpStepPlan({"[root]", "a", "b"}, o);
  for (int i = 0; i < p.size(); ++i) {
    for (int d : p.instrs[static_cast<size_t>(i)].deps) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, i) << "dep must precede its instruction";
    }
  }
  // Without accumulation communication, only the last microbatch reduces.
  int reduces = 0;
  for (const plan::Instr& in : p.instrs) {
    if (in.op == plan::Op::kReduceGrad) {
      ++reduces;
      EXPECT_EQ(in.microbatch, 2);
    }
  }
  EXPECT_EQ(reduces, 3);  // root + 2 units, final microbatch only
}

TEST(PlanBuilderTest, BackwardPrefetchReordersUnshardBeforeReduce) {
  plan::FsdpPlanOptions o = plan::FsdpPlanOptions::Runtime();
  o.backward_prefetch = true;
  plan::StepPlan p = plan::BuildFsdpStepPlan({"[root]", "a", "b"}, o);
  auto canon = p.Canonical();
  // After b's backward compute, b's ReduceScatter must come after a's
  // (prefetched) backward AllGather — not the forward one, hence the `from`.
  auto pos = [&](const std::string& s, int from) {
    for (size_t i = static_cast<size_t>(from); i < canon.size(); ++i) {
      if (canon[i] == s) return static_cast<int>(i);
    }
    return -1;
  };
  const int bwd_b = pos("BWD:b", 0);
  ASSERT_NE(bwd_b, -1);
  const int prefetch_a = pos("UNSHARD:a", bwd_b);
  const int reduce_b = pos("REDUCE_GRAD:b", bwd_b);
  ASSERT_NE(prefetch_a, -1);
  ASSERT_NE(reduce_b, -1);
  EXPECT_LT(prefetch_a, reduce_b);
}

TEST(PlanBuilderTest, DdpPlanBucketsByBytes) {
  plan::DdpPlanOptions o;
  o.bucket_bytes = 100;
  o.unit_bytes = {40, 60, 60, 60};  // root + 3 units
  plan::StepPlan p = plan::BuildDdpStepPlan({"[root]", "a", "b", "c"}, o);
  std::vector<int64_t> bucket_bytes;
  for (const plan::Instr& in : p.instrs) {
    if (in.op == plan::Op::kReduceGrad) bucket_bytes.push_back(in.bytes);
  }
  // c+b fill the first bucket (120 >= 100), a flushes at the last unit, the
  // root reduces in its own final bucket.
  EXPECT_EQ(bucket_bytes, (std::vector<int64_t>{120, 60, 40}));
}

// ------------------------------------------------ pass semantics property

/// The multiset of (microbatch, unit) pairs a plan gathers / reduces — the
/// semantic payload the compiler passes must preserve exactly (batched
/// instructions count once per covered unit).
std::multiset<std::pair<int, int>> CollectiveUnits(const plan::StepPlan& p,
                                                   plan::Op op) {
  std::multiset<std::pair<int, int>> out;
  for (const plan::Instr& in : p.instrs) {
    if (in.op != op) continue;
    for (int u : plan::CoveredUnits(in)) out.insert({in.microbatch, u});
  }
  return out;
}

TEST(PassPropertyTest, DefaultPipelinePreservesCollectiveSemantics) {
  const std::vector<std::string> names{"[root]", "u1", "u2", "u3",
                                       "u4", "u5", "u6"};
  plan::PassOptions popt;
  popt.unit_shard_bytes.assign(names.size(), 1 << 20);
  popt.unit_reduce_bytes.assign(names.size(), 1 << 20);
  popt.fuse_below_bytes = 4 << 20;  // everything is a fusion candidate

  int total_rewrites = 0;
  for (plan::ReshardPolicy reshard :
       {plan::ReshardPolicy::kIfGradSync, plan::ReshardPolicy::kAfterBackward,
        plan::ReshardPolicy::kKeepUnsharded}) {
    for (bool backward_prefetch : {false, true}) {
      for (bool forward_prefetch : {false, true}) {
        for (int microbatches : {1, 2}) {
          plan::FsdpPlanOptions o = plan::FsdpPlanOptions::Sim();
          o.reshard = reshard;
          o.reshard_after_forward =
              reshard != plan::ReshardPolicy::kKeepUnsharded;
          o.backward_prefetch = backward_prefetch;
          o.forward_prefetch = forward_prefetch;
          o.microbatches = microbatches;
          if (microbatches > 1) {
            o.accum = plan::AccumMode::kReduceLastMicrobatch;
          }
          plan::StepPlan p = plan::BuildFsdpStepPlan(names, o);
          const auto gathers_before =
              CollectiveUnits(p, plan::Op::kUnshard);
          const auto reduces_before =
              CollectiveUnits(p, plan::Op::kReduceGrad);

          // Run validates before and after every pass (FSDP_CHECK aborts on
          // a corrupting rewrite), so surviving it IS the structural check.
          plan::PassManager pm = plan::PassManager::Default(popt);
          plan::PassResult res = pm.Run(p);
          total_rewrites += res.total_rewrites();

          EXPECT_EQ(gathers_before, CollectiveUnits(p, plan::Op::kUnshard))
              << "pass dropped or duplicated a gather";
          EXPECT_EQ(reduces_before, CollectiveUnits(p, plan::Op::kReduceGrad))
              << "pass dropped or duplicated a reduction";
        }
      }
    }
  }
  // The property must not hold vacuously: the grid has plans the pipeline
  // actually rewrites.
  EXPECT_GT(total_rewrites, 0);
}

// ------------------------------------------------ DDP executed-plan log

TEST(DdpExecutedPlanTest, RecordsBucketReducesAndWaits) {
  const int world = 2;
  std::vector<plan::Instr> executed;
  int num_buckets = 0;
  auto comm = std::make_shared<comm::Communicator>(world);
  RunOnRanks(world, [&](int r) {
    ddp::DistributedDataParallel ddp(MakeModel(), comm::ProcessGroup(comm, r),
                                     {.bucket_cap_numel = 64});
    Tensor loss =
        ops::CrossEntropy(ddp.Forward(RankTokens(r)), RankTargets(r));
    autograd::RunBackward(loss);
    if (r == 0) {
      executed = ddp.executed_plan();
      num_buckets = ddp.num_buckets();
    }
  });
  ASSERT_GT(num_buckets, 1);
  // The recorded DDP plan passes the compiler's validator (bucketed
  // AllReduce, no unshards — the gather checks don't apply). Instr::unit
  // indexes buckets here, so size the name table to the bucket count.
  plan::StepPlan ddp_plan;
  ddp_plan.unit_names.assign(static_cast<size_t>(num_buckets), "");
  ddp_plan.instrs = executed;
  const Status st = plan::PlanValidator{}.Check(ddp_plan);
  EXPECT_TRUE(st.ok()) << st.message();
  int reduces = 0, waits = 0;
  for (const plan::Instr& in : executed) {
    if (in.op == plan::Op::kReduceGrad) {
      ++reduces;
      EXPECT_GT(in.bytes, 0);
    }
    if (in.op == plan::Op::kWaitReduceGrad) ++waits;
  }
  EXPECT_EQ(reduces, num_buckets);
  EXPECT_EQ(waits, num_buckets);
  // Every reduce precedes the first wait only if backward produced buckets
  // in order; at minimum the final wait follows the final reduce.
  EXPECT_EQ(executed.back().op, plan::Op::kWaitReduceGrad);
}

}  // namespace
}  // namespace fsdp
