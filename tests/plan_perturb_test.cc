// Plan-level fault injection (plan/perturb.h): perturbations of a StepPlan
// replayed through BOTH consumers of the IR —
//
//  * the real collective runtime (comm::ReplayPlan over a fault-armed
//    Communicator): perturbations that violate the cross-rank collective
//    contract (PerturbsCollectives == true) must be caught by the
//    watchdog/desync machinery, benign ones must complete OK on all ranks;
//  * the simulator (simfsdp::FsdpSimulator over a perturbed sim-shape plan):
//    perturbed plans stay interpretable, and injected straggler delays show
//    up in virtual time.
//
// Plus unit tests of the perturbation algebra itself (dependency splicing on
// drop, edge remapping on swap).
#include <gtest/gtest.h>

#include "comm/plan_replay.h"
#include "common/threading.h"
#include "plan/builder.h"
#include "plan/perturb.h"
#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"

namespace fsdp {
namespace {

using plan::ApplyPerturbation;
using plan::Instr;
using plan::Perturbation;
using plan::PerturbKind;
using plan::PerturbsCollectives;
using plan::StepPlan;

/// A tiny synthetic plan for the algebra tests: four instructions with a
/// dependency chain 0 <- 1 <- 2 and 3 depending on both 1 and 2.
StepPlan ChainPlan() {
  StepPlan p;
  p.unit_names = {"u"};
  for (int i = 0; i < 4; ++i) {
    Instr in;
    in.op = plan::Op::kCompute;
    in.unit = 0;
    p.instrs.push_back(in);
  }
  p.instrs[1].deps = {0};
  p.instrs[2].deps = {1};
  p.instrs[3].deps = {1, 2};
  return p;
}

TEST(PlanPerturbTest, DropSplicesDependenciesThroughRemovedInstr) {
  StepPlan p = ApplyPerturbation(ChainPlan(), {PerturbKind::kDropInstr, 1, 0});
  ASSERT_EQ(p.size(), 3);
  // Old instr 2 (now 1) inherited the dropped instr's dep on 0.
  EXPECT_EQ(p.instrs[1].deps, (std::vector<int>{0}));
  // Old instr 3 (now 2): its dep on the dropped instr was spliced to 0, its
  // dep on old-2 reindexed to 1.
  EXPECT_EQ(p.instrs[2].deps, (std::vector<int>{0, 1}));
}

TEST(PlanPerturbTest, SwapRemapsEdgesAndDropsTheInterEdge) {
  StepPlan p = ApplyPerturbation(ChainPlan(),
                                 {PerturbKind::kSwapAdjacent, 1, 0});
  ASSERT_EQ(p.size(), 4);
  // Positions 1 and 2 exchanged. The moved-earlier instr (old 2) depended on
  // old 1, which now runs after it: that edge is dropped. Its other deps
  // (none) stay. The moved-later instr (old 1) keeps its dep on 0.
  EXPECT_TRUE(p.instrs[1].deps.empty());
  EXPECT_EQ(p.instrs[2].deps, (std::vector<int>{0}));
  // A later instruction's edges follow the instructions to their new slots
  // (remapped in place: the dep on old-1 now points at 2 and vice versa).
  EXPECT_EQ(p.instrs[3].deps, (std::vector<int>{2, 1}));
}

TEST(PlanPerturbTest, DelayAccumulatesOnTheInstr) {
  StepPlan base = ChainPlan();
  StepPlan p = ApplyPerturbation(base, {PerturbKind::kDelay, 2, 1500.0});
  EXPECT_EQ(p.instrs[2].delay_us, 1500.0);
  p = ApplyPerturbation(p, {PerturbKind::kDelay, 2, 500.0});
  EXPECT_EQ(p.instrs[2].delay_us, 2000.0);
  EXPECT_FALSE(PerturbsCollectives(base, {PerturbKind::kDelay, 2, 1500.0}));
}

/// First instruction at or after `from` on `lane`, or -1.
int FindLane(const StepPlan& p, plan::Lane lane, int from = 0) {
  for (int i = from; i < p.size(); ++i) {
    if (p.instrs[i].lane == lane) return i;
  }
  return -1;
}

/// First position where instructions i and i+1 are both comm-lane.
int FindAdjacentCommPair(const StepPlan& p) {
  for (int i = 0; i + 1 < p.size(); ++i) {
    if (p.instrs[i].lane == plan::Lane::kComm &&
        p.instrs[i + 1].lane == plan::Lane::kComm) {
      return i;
    }
  }
  return -1;
}

StepPlan RuntimeBasePlan() {
  plan::FsdpPlanOptions o = plan::FsdpPlanOptions::Runtime();
  return plan::BuildFsdpStepPlan({"[root]", "layer1", "layer2", "layer3"}, o);
}

TEST(PlanPerturbTest, ClassifierSeparatesContractViolations) {
  const StepPlan base = RuntimeBasePlan();
  const int comm_i = FindLane(base, plan::Lane::kComm);
  const int host_i = FindLane(base, plan::Lane::kHost);
  const int pair = FindAdjacentCommPair(base);
  ASSERT_GE(comm_i, 0);
  ASSERT_GE(host_i, 0);
  ASSERT_GE(pair, 0);  // backward prefetch puts AG next to RS

  EXPECT_TRUE(PerturbsCollectives(base, {PerturbKind::kDropInstr, comm_i, 0}));
  EXPECT_FALSE(PerturbsCollectives(base, {PerturbKind::kDropInstr, host_i, 0}));
  EXPECT_TRUE(PerturbsCollectives(base, {PerturbKind::kSwapAdjacent, pair, 0}));
  // Swapping a collective with a non-collective neighbour keeps this rank's
  // collective stream intact.
  const int host_after_comm =
      base.instrs[comm_i + 1].lane != plan::Lane::kComm ? comm_i : -1;
  if (host_after_comm >= 0) {
    EXPECT_FALSE(PerturbsCollectives(
        base, {PerturbKind::kSwapAdjacent, host_after_comm, 0}));
  }
  EXPECT_FALSE(PerturbsCollectives(base, {PerturbKind::kDelay, comm_i, 100}));
}

// The closed loop (ROADMAP "plan-level fault injection"): rank 0 replays a
// perturbed plan while ranks 1..3 replay the base plan through one
// fault-armed communicator. The runtime's verdict (aborted or not) must
// match the static classifier for every perturbation.
TEST(PlanPerturbTest, RuntimeCatchesExactlyTheContractViolations) {
  const int w = 4;
  const StepPlan base = RuntimeBasePlan();

  std::vector<Perturbation> cases;
  // Benign straggler: 10 ms delay before the first collective.
  cases.push_back({PerturbKind::kDelay, FindLane(base, plan::Lane::kComm),
                   10000.0});
  // Benign structural edit: drop a wait marker (host lane).
  cases.push_back({PerturbKind::kDropInstr,
                   FindLane(base, plan::Lane::kHost), 0});
  // Contract violations: drop a collective; reorder two collectives.
  cases.push_back({PerturbKind::kDropInstr,
                   FindLane(base, plan::Lane::kComm), 0});
  cases.push_back({PerturbKind::kSwapAdjacent, FindAdjacentCommPair(base),
                   0});
  // Dropping the LAST collective leaves the peers waiting at end of stream —
  // only the watchdog (not the rendezvous) can catch that shape.
  int last_comm = -1;
  for (int i = 0; i < base.size(); ++i) {
    if (base.instrs[i].lane == plan::Lane::kComm) last_comm = i;
  }
  cases.push_back({PerturbKind::kDropInstr, last_comm, 0});

  for (const Perturbation& p : cases) {
    ASSERT_GE(p.index, 0);
    const std::string label = plan::DescribePerturbation(base, p);
    const bool violates = PerturbsCollectives(base, p);
    const StepPlan perturbed = ApplyPerturbation(base, p);

    auto comm = std::make_shared<comm::Communicator>(w);
    comm->SetName("perturb");
    comm->SetDesyncDetection(true);
    comm->SetDefaultTimeout(150);

    std::vector<Status> status(w);
    RunOnRanks(w, [&](int r) {
      comm::ReplayOptions ro;
      ro.timeout_ms = 150;
      status[r] = comm::ReplayPlan(comm::ProcessGroup(comm, r),
                                   r == 0 ? perturbed : base, ro);
    });

    EXPECT_EQ(comm->aborted(), violates) << label;
    if (violates) {
      // The runtime blamed the perturbed rank, and at least one rank saw
      // the abort Status from its waits.
      EXPECT_EQ(comm->last_diagnosis().culprit_rank, 0) << label;
      bool any_error = false;
      for (const Status& st : status) any_error |= !st.ok();
      EXPECT_TRUE(any_error) << label;
    } else {
      for (int r = 0; r < w; ++r) {
        EXPECT_TRUE(status[r].ok()) << label << " rank " << r << ": "
                                    << status[r].ToString();
      }
    }
  }
}

// The same perturbation kinds through the simulator: the IR's second
// consumer interprets perturbed plans without falling over, and straggler
// delays surface in virtual time.
TEST(PlanPerturbTest, SimulatorRepaysPerturbedPlans) {
  const simfsdp::Workload w = simfsdp::T5_611M();
  const sim::Topology topo{1, 8};
  const sim::SimConstants constants{};
  simfsdp::FsdpSimConfig cfg;
  cfg.iterations = 2;
  const StepPlan base = simfsdp::BuildSimStepPlan(w, topo, cfg);

  auto run = [&](const StepPlan& plan) {
    return simfsdp::FsdpSimulator(w, topo, constants, cfg, plan).Run();
  };
  const simfsdp::SimMetrics m_base = run(base);
  ASSERT_FALSE(m_base.oom);

  // A 50 ms straggler delay on the first collective stalls the virtual CPU
  // thread and must lengthen the iteration by about that much.
  const int comm_i = FindLane(base, plan::Lane::kComm);
  ASSERT_GE(comm_i, 0);
  const simfsdp::SimMetrics m_delay =
      run(ApplyPerturbation(base, {PerturbKind::kDelay, comm_i, 50000.0}));
  EXPECT_GE(m_delay.iter_time_us, m_base.iter_time_us + 40000.0);

  // A dropped collective is benign on a single simulated rank (the desync
  // only exists cross-rank — exactly why the real runtime must catch it):
  // the interpreter still completes, guarded by its issue/free checks.
  const simfsdp::SimMetrics m_drop =
      run(ApplyPerturbation(base, {PerturbKind::kDropInstr, comm_i, 0}));
  EXPECT_FALSE(m_drop.oom);
  EXPECT_GT(m_drop.iter_time_us, 0);

  const int pair = FindAdjacentCommPair(base);
  if (pair >= 0) {
    const simfsdp::SimMetrics m_swap =
        run(ApplyPerturbation(base, {PerturbKind::kSwapAdjacent, pair, 0}));
    EXPECT_FALSE(m_swap.oom);
    EXPECT_GT(m_swap.iter_time_us, 0);
  }
}

}  // namespace
}  // namespace fsdp
