// Tests for the per-instruction step profiler (src/obs/profiler.h): the
// span<->instr join across sharding strategies and prefetch settings, exact
// critical-path / overlap / memory-attribution numbers on a hand-built
// profile, the faulted-step incomplete path (cross-checked against the
// flight recorder), the PROFILE_*.json artifact envelope, Chrome counter
// tracks, prof.* metrics, and the collision-safe ArtifactPath counter.
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "bench/bench_util.h"
#include "comm/process_group.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/transformer.h"
#include "obs/artifact.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "plan/plan.h"

namespace fsdp {
namespace {

using comm::FaultKind;
using comm::FaultSpec;

bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

/// Artifacts land under obs::ArtifactPath; point it at the test temp dir.
void UseTempArtifactDir() {
  ::setenv("FSDP_ARTIFACT_DIR", ::testing::TempDir().c_str(), 1);
}

core::FsdpOptions BlockWrapOptions() {
  core::FsdpOptions opts;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
  return opts;
}

/// Runs `steps` forward+backward iterations of a small auto-wrapped
/// transformer on `world` rank threads with the collector enabled, and
/// returns rank 0's join inputs (executed plan + span snapshot + status).
obs::ProfileInputs RunProfiledFsdp(int world, int sharding_factor,
                                   core::FsdpOptions opts, int steps = 1,
                                   int num_layers = 2) {
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  collector.set_enabled(true);
  comm::DeviceMesh mesh(world, sharding_factor);
  obs::ProfileInputs in;
  RunOnRanks(world, [&](int rank) {
    nn::InitCtx ctx(Device::kCpu, 7);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 17;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = num_layers;
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    auto state = core::FullyShard(model, mesh, rank, opts);
    Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    for (int s = 0; s < steps; ++s) {
      Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
      autograd::RunBackward(loss);
    }
    if (rank == 0) {
      in.instrs = state->executed_plan();
      for (int u = 0; u < state->num_units(); ++u) {
        in.unit_names.push_back(state->unit_name(u));
      }
      in.status = state->status();
    }
  });
  collector.set_enabled(false);
  in.rank = 0;
  in.events = collector.SnapshotRank(0);
  collector.Clear();
  return in;
}

// ---------------------------------------------------------------------------
// (a) Join correctness: every executed instruction matches exactly one span,
// across sharding strategies x prefetch settings.

TEST(ProfilerJoinTest, EveryInstrMatchesAcrossStrategiesAndPrefetch) {
  struct Config {
    core::ShardingStrategy strategy;
    int factor;
    bool prefetch;
  };
  const int world = 4;
  const std::vector<Config> configs = {
      {core::ShardingStrategy::kFullShard, world, false},
      {core::ShardingStrategy::kFullShard, world, true},
      {core::ShardingStrategy::kShardGradOp, world, false},
      {core::ShardingStrategy::kShardGradOp, world, true},
      {core::ShardingStrategy::kHybridShard, 2, false},
      {core::ShardingStrategy::kHybridShard, 2, true},
  };
  for (const Config& cfg : configs) {
    SCOPED_TRACE(std::string(core::ShardingStrategyName(cfg.strategy)) +
                 (cfg.prefetch ? " prefetch" : " no-prefetch"));
    core::FsdpOptions opts = BlockWrapOptions();
    opts.strategy = cfg.strategy;
    opts.backward_prefetch = cfg.prefetch;
    opts.forward_prefetch = cfg.prefetch;
    const obs::ProfileInputs in =
        RunProfiledFsdp(world, cfg.factor, opts, /*steps=*/2);
    ASSERT_FALSE(in.instrs.empty());
    ASSERT_FALSE(in.events.empty());

    const auto steps = obs::BuildStepProfiles(in);
    ASSERT_EQ(steps.size(), 2u);
    for (size_t s = 0; s < steps.size(); ++s) {
      SCOPED_TRACE("step " + std::to_string(s));
      const obs::StepProfile& step = steps[s];
      EXPECT_TRUE(step.complete) << step.incomplete_reason;
      for (const obs::InstrProfile& p : step.instrs) {
        EXPECT_TRUE(p.matched) << p.label;
        EXPECT_GE(p.t_end_us, p.t_begin_us) << p.label;
        EXPECT_GE(p.t_exec_us, p.t_begin_us) << p.label;
      }
      EXPECT_GT(step.step_us, 0);
      EXPECT_GT(step.comm_busy_us, 0);
      EXPECT_GE(step.overlap_efficiency, 0.0);
      EXPECT_LE(step.overlap_efficiency, 1.0);
      EXPECT_FALSE(step.critical_path.empty());
      EXPECT_GT(step.critical_path_us, 0);
      // The binding chain ends at the step's last-finishing instruction.
      const int last = step.critical_path.back();
      for (const obs::InstrProfile& p : step.instrs) {
        EXPECT_LE(p.t_end_us, step.instrs[last].t_end_us);
      }
      // AllGathers resident at some point: peak attribution is nonzero.
      EXPECT_GT(step.peak_unsharded_bytes, 0);
      EXPECT_FALSE(step.peak_units.empty());
      // Hybrid sharding runs the replica AllReduce; its instr must join to
      // an AllReduce span, while plain FSDP reduces join ReduceScatters.
      for (const obs::InstrProfile& p : step.instrs) {
        if (p.instr.op == plan::Op::kReduceGrad) {
          EXPECT_EQ(p.matched_kind, obs::EventKind::kReduceScatter) << p.label;
        }
        if (p.instr.op == plan::Op::kAllReduceReplicas) {
          EXPECT_EQ(p.matched_kind, obs::EventKind::kAllReduce) << p.label;
        }
      }
    }
    // Aggregation sees only complete steps and orders labels by total time.
    const obs::ProfileAggregate agg = obs::AggregateProfiles(steps);
    EXPECT_EQ(agg.steps, 2);
    EXPECT_EQ(agg.complete_steps, 2);
    EXPECT_GT(agg.step_p50_us, 0);
    ASSERT_FALSE(agg.instrs.empty());
    for (size_t i = 1; i < agg.instrs.size(); ++i) {
      EXPECT_GE(agg.instrs[i - 1].total_us, agg.instrs[i].total_us);
    }
  }
}

// The DDP bucket log joins the same way: per-bucket AllReduce spans (the
// kReduceGrad instructions resolve to kAllReduce, not kReduceScatter) plus
// per-bucket wait spans.
TEST(ProfilerJoinTest, DdpBucketLogJoins) {
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  collector.set_enabled(true);
  const int world = 4;
  auto comm = std::make_shared<comm::Communicator>(world);
  obs::ProfileInputs in;
  RunOnRanks(world, [&](int rank) {
    nn::InitCtx ctx(Device::kCpu, 11);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 13;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    ddp::DdpOptions opts;
    opts.bucket_cap_numel = 400;  // several buckets
    ddp::DistributedDataParallel replica(
        std::make_shared<nn::TransformerModel>(cfg, ctx),
        comm::ProcessGroup(comm, rank), opts);
    Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    Tensor loss = ops::CrossEntropy(replica(tokens), targets);
    autograd::RunBackward(loss);
    if (rank == 0) {
      in.instrs = replica.executed_plan();
      for (int b = 0; b < replica.num_buckets(); ++b) {
        in.unit_names.push_back("ddp_bucket" + std::to_string(b));
      }
      in.status = replica.status();
    }
  });
  collector.set_enabled(false);
  in.rank = 0;
  in.events = collector.SnapshotRank(0);
  collector.Clear();

  ASSERT_GE(in.unit_names.size(), 2u);
  const auto steps = obs::BuildStepProfiles(in);
  ASSERT_EQ(steps.size(), 1u);
  const obs::StepProfile& step = steps[0];
  EXPECT_TRUE(step.complete) << step.incomplete_reason;
  int reduces = 0;
  for (const obs::InstrProfile& p : step.instrs) {
    EXPECT_TRUE(p.matched) << p.label;
    if (p.instr.op == plan::Op::kReduceGrad) {
      ++reduces;
      EXPECT_EQ(p.matched_kind, obs::EventKind::kAllReduce) << p.label;
      EXPECT_GT(p.resident_bytes, 0) << p.label;
    }
  }
  EXPECT_EQ(reduces, static_cast<int>(in.unit_names.size()));
}

// ---------------------------------------------------------------------------
// (b) Exact numbers on a hand-built profile: queue/service split, exposed
// communication, overlap efficiency, lane usage, critical path, memory.

obs::ProfileInputs SyntheticInputs() {
  obs::ProfileInputs in;
  in.unit_names = {"u0"};
  auto instr = [](plan::Op op, int unit, plan::Phase phase) {
    plan::Instr i;
    i.op = op;
    i.unit = unit;
    i.phase = phase;
    return i;
  };
  in.instrs = {
      instr(plan::Op::kUnshard, 0, plan::Phase::kForward),
      instr(plan::Op::kWaitUnshard, 0, plan::Phase::kForward),
      instr(plan::Op::kCompute, 0, plan::Phase::kForward),
      instr(plan::Op::kCompute, 0, plan::Phase::kBackward),
      instr(plan::Op::kReduceGrad, 0, plan::Phase::kBackward),
      instr(plan::Op::kWaitReduceGrad, -1, plan::Phase::kBackward),
  };
  // Timeline (us): AG issued at 0, picked up at 5, completes at 20. The
  // rank thread waits 2..20, computes 20..50 (fwd) and 50..95 (bwd). The
  // ReduceScatter is issued at 80 (inside backward), picked up at 82,
  // completes at 100; the end-of-backward wait spans 100..110.
  auto span = [](obs::EventKind kind, const char* unit, const char* lane,
                 double b, double e, int64_t bytes, double exec = 0) {
    obs::TraceEvent ev{0, kind, unit, lane, b, e, bytes};
    ev.t_exec_us = exec;
    return ev;
  };
  in.events = {
      span(obs::EventKind::kAllGather, "u0", "comm", 0, 20, 300, 5),
      span(obs::EventKind::kAllGather, "u0", "runtime", 0, 1, 400),
      span(obs::EventKind::kWait, "u0", "runtime", 2, 20, 0),
      span(obs::EventKind::kForward, "u0", "compute", 20, 50, 0),
      span(obs::EventKind::kBackward, "u0", "compute", 50, 95, 0),
      span(obs::EventKind::kReduceScatter, "u0", "comm", 80, 100, 300, 82),
      span(obs::EventKind::kReduceScatter, "u0", "runtime", 80, 81, 400),
      span(obs::EventKind::kWait, "", "runtime", 100, 110, 0),
  };
  return in;
}

TEST(ProfilerAnalysisTest, SyntheticStepComputesExactNumbers) {
  const auto steps = obs::BuildStepProfiles(SyntheticInputs());
  ASSERT_EQ(steps.size(), 1u);
  const obs::StepProfile& step = steps[0];
  ASSERT_TRUE(step.complete) << step.incomplete_reason;
  ASSERT_EQ(step.instrs.size(), 6u);

  // Queue/service split from the comm worker's pickup stamp.
  const obs::InstrProfile& ag = step.instrs[0];
  EXPECT_DOUBLE_EQ(ag.queue_us, 5.0);
  EXPECT_DOUBLE_EQ(ag.service_us, 15.0);
  EXPECT_EQ(ag.bytes, 300);           // wire bytes from the comm span
  EXPECT_EQ(ag.resident_bytes, 400);  // full unsharded bytes from the issue
  const obs::InstrProfile& rs = step.instrs[4];
  EXPECT_DOUBLE_EQ(rs.queue_us, 2.0);
  EXPECT_DOUBLE_EQ(rs.service_us, 18.0);

  EXPECT_DOUBLE_EQ(step.t_begin_us, 0.0);
  EXPECT_DOUBLE_EQ(step.t_end_us, 110.0);
  EXPECT_DOUBLE_EQ(step.step_us, 110.0);

  // Busy compute = [20,95] (the waits do not intersect it) = 75us.
  EXPECT_DOUBLE_EQ(step.compute_busy_us, 75.0);
  // Comm busy = 15 + 18. Exposed: the AG service window [5,20] is entirely
  // uncovered (15us); the RS window [82,100] is covered up to 95 (5us).
  EXPECT_DOUBLE_EQ(step.comm_busy_us, 33.0);
  EXPECT_DOUBLE_EQ(ag.exposed_us, 15.0);
  EXPECT_DOUBLE_EQ(rs.exposed_us, 5.0);
  EXPECT_DOUBLE_EQ(step.exposed_comm_us, 20.0);
  EXPECT_DOUBLE_EQ(step.overlap_efficiency, 1.0 - 20.0 / 33.0);

  ASSERT_EQ(step.lanes.size(), 3u);
  EXPECT_EQ(step.lanes[0].lane, "compute");
  EXPECT_DOUBLE_EQ(step.lanes[0].busy_us, 75.0);
  EXPECT_DOUBLE_EQ(step.lanes[0].utilization, 75.0 / 110.0);
  EXPECT_EQ(step.lanes[1].lane, "comm");
  EXPECT_DOUBLE_EQ(step.lanes[1].busy_us, 33.0);
  EXPECT_EQ(step.lanes[2].lane, "runtime");
  EXPECT_DOUBLE_EQ(step.lanes[2].busy_us, 28.0);  // waits: 18 + 10

  // The binding chain: AG -> wait -> fwd -> bwd -> RS -> final wait (every
  // instruction binds here), summing comm service + span durations.
  ASSERT_EQ(step.critical_path.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(step.critical_path[i], static_cast<int>(i));
    EXPECT_TRUE(step.instrs[i].on_critical_path);
  }
  EXPECT_DOUBLE_EQ(step.critical_path_us, 15 + 18 + 30 + 45 + 18 + 10);

  // Memory attribution: u0's 400 bytes resident from the AG completion on
  // (never resharded in this synthetic step).
  EXPECT_EQ(step.peak_unsharded_bytes, 400);
  ASSERT_EQ(step.peak_units.size(), 1u);
  EXPECT_EQ(step.peak_units[0], "u0");
}

TEST(ProfilerAnalysisTest, MetricsAndCounterTracksFromSyntheticStep) {
  const auto steps = obs::BuildStepProfiles(SyntheticInputs());
  auto& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  obs::PublishProfileMetrics(steps);
  EXPECT_EQ(reg.GetCounter("prof.steps").value(), 1);
  EXPECT_EQ(reg.GetCounter("prof.incomplete_steps").value(), 0);
  EXPECT_EQ(reg.GetHistogram("prof.step.us").count(), 1);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("prof.step.us").max(), 110.0);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("prof.overlap_efficiency").max(),
                   1.0 - 20.0 / 33.0);
  EXPECT_DOUBLE_EQ(reg.GetHistogram("prof.exposed_comm.us").max(), 20.0);

  // Counter tracks: residency rises to 400 at the AG completion; two
  // collectives are in flight never simultaneously (max 1).
  const auto tracks = obs::ProfileCounterTracks(steps, /*rank=*/0);
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].name, "unsharded_bytes");
  ASSERT_EQ(tracks[0].samples.size(), 1u);
  EXPECT_DOUBLE_EQ(tracks[0].samples[0].t_us, 20.0);
  EXPECT_DOUBLE_EQ(tracks[0].samples[0].value, 400.0);
  EXPECT_EQ(tracks[1].name, "inflight_collectives");
  double max_inflight = 0;
  for (const auto& s : tracks[1].samples) {
    max_inflight = std::max(max_inflight, s.value);
  }
  EXPECT_DOUBLE_EQ(max_inflight, 1.0);

  // The Chrome exporter renders them as "C" counter events that parse.
  auto parsed = obs::ParseJson(obs::ChromeTraceJson({}, tracks));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  int counter_events = 0;
  for (const auto& ev : parsed.ValueOrDie()["traceEvents"].AsArray()) {
    if (ev["ph"].AsString() != "C") continue;
    ++counter_events;
    EXPECT_TRUE(ev["args"].Has(ev["name"].AsString()));
  }
  EXPECT_GT(counter_events, 0);
}

// ---------------------------------------------------------------------------
// (c) Faulted steps: a hung AllGather yields an incomplete StepProfile whose
// unmatched instruction names the victim, cross-checked against the flight
// recorder dump the watchdog wrote.

TEST(ProfilerFaultTest, HungCollectiveYieldsIncompleteProfile) {
  UseTempArtifactDir();
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  collector.set_enabled(true);
  const int world = 4;
  comm::DeviceMesh mesh(world, world);
  std::vector<nn::ModulePtr> models(world);
  std::vector<std::shared_ptr<core::FsdpState>> states(world);
  RunOnRanks(world, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 42);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 13;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    models[r] = std::make_shared<nn::TransformerModel>(cfg, ctx);
    states[r] = core::FullyShard(models[r], mesh, r, BlockWrapOptions());
  });
  ASSERT_GE(states[0]->num_units(), 2);
  const std::string victim = states[0]->unit_name(1);
  mesh.ShardGroup(0).communicator()->InjectFault(
      {FaultKind::kHang, /*rank=*/1, /*seq=*/-1, victim, 0});
  mesh.SetDefaultTimeout(100);

  RunOnRanks(world, [&](int r) {
    Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    Tensor loss = ops::CrossEntropy((*models[r])(tokens), targets);
    autograd::RunBackward(loss);
    ASSERT_FALSE(states[r]->status().ok()) << "rank " << r;
  });
  collector.set_enabled(false);

  obs::ProfileInputs in;
  in.instrs = states[0]->executed_plan();
  for (int u = 0; u < states[0]->num_units(); ++u) {
    in.unit_names.push_back(states[0]->unit_name(u));
  }
  in.rank = 0;
  in.events = collector.SnapshotRank(0);
  in.status = states[0]->status();
  collector.Clear();

  const auto steps = obs::BuildStepProfiles(in);
  ASSERT_FALSE(steps.empty());
  bool any_incomplete = false;
  for (const obs::StepProfile& step : steps) {
    if (step.complete) continue;
    any_incomplete = true;
    EXPECT_FALSE(step.incomplete_reason.empty());
  }
  ASSERT_TRUE(any_incomplete);

  // Aggregation must not count the broken step.
  const obs::ProfileAggregate agg = obs::AggregateProfiles(steps);
  EXPECT_LT(agg.complete_steps, agg.steps);
  auto& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();
  obs::PublishProfileMetrics(steps);
  EXPECT_GT(reg.GetCounter("prof.incomplete_steps").value(), 0);

  // Cross-check the flight recorder: the watchdog dumped it before the
  // abort, and it records the collective the profile lost the span of.
  const auto communicator = mesh.ShardGroup(0).communicator();
  EXPECT_TRUE(communicator->aborted());
  const std::string dump = communicator->flight_dump_path();
  ASSERT_FALSE(dump.empty());
  ASSERT_TRUE(std::filesystem::exists(dump));
  auto parsed = obs::ParseJsonFile(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  bool victim_recorded = false;
  for (const auto& rank_ring : parsed.ValueOrDie()["ranks"].AsArray()) {
    for (const auto& rec : rank_ring["records"].AsArray()) {
      if (Contains(rec["op"].AsString(), victim)) victim_recorded = true;
    }
  }
  EXPECT_TRUE(victim_recorded)
      << "flight recorder has no record for " << victim;
}

// ---------------------------------------------------------------------------
// (d) Artifacts: the PROFILE_*.json writer round-trips through the parser
// with a valid envelope, and ArtifactPath never reuses a filename.

TEST(ProfilerArtifactTest, WriteProfileJsonRoundTripsWithEnvelope) {
  UseTempArtifactDir();
  const auto steps = obs::BuildStepProfiles(SyntheticInputs());
  obs::ArtifactMeta meta;
  meta.world_size = 4;
  meta.ranks = 1;
  meta.preset = "synthetic";
  auto written = obs::WriteProfileJson("profiler_test", steps, meta);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  const std::string path = written.ValueOrDie();
  EXPECT_TRUE(Contains(path, "PROFILE_profiler_test"));

  auto parsed = obs::ParseJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  const Status envelope = obs::ValidateArtifactJson(doc);
  EXPECT_TRUE(envelope.ok()) << envelope.ToString();
  EXPECT_EQ(doc["meta"]["preset"].AsString(), "synthetic");
  EXPECT_EQ(static_cast<int>(doc["meta"]["world_size"].AsNumber()), 4);

  EXPECT_EQ(static_cast<int>(doc["aggregate"]["complete_steps"].AsNumber()),
            1);
  const auto& step = doc["steps"].AsArray().at(0);
  EXPECT_TRUE(step["complete"].AsBool());
  EXPECT_DOUBLE_EQ(step["step_us"].AsNumber(), 110.0);
  EXPECT_FALSE(step["critical_path"].AsArray().empty());
  EXPECT_EQ(static_cast<int64_t>(step["peak_unsharded_bytes"].AsNumber()),
            400);
  EXPECT_EQ(step["instrs"].AsArray().size(), 6u);
}

TEST(ProfilerArtifactTest, ArtifactPathSuffixesRepeatedFilenames) {
  UseTempArtifactDir();
  const std::string first = obs::ArtifactPath("PROFILE_collide.json");
  const std::string second = obs::ArtifactPath("PROFILE_collide.json");
  const std::string third = obs::ArtifactPath("PROFILE_collide.json");
  EXPECT_TRUE(Contains(first, "PROFILE_collide.json"));
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_TRUE(Contains(second, "PROFILE_collide-2.json")) << second;
  EXPECT_TRUE(Contains(third, "PROFILE_collide-3.json")) << third;
}

TEST(ProfilerArtifactTest, BenchEnvelopeStampedAndSchemaChecked) {
  UseTempArtifactDir();
  obs::ArtifactMeta meta;
  meta.world_size = 8;
  meta.ranks = 8;
  meta.preset = "profiler_test";
  std::vector<bench::JsonRow> rows;
  rows.push_back(bench::JsonRow().Set("gpus", 8).Set("tflops", 123.4));
  bench::WriteBenchJson("profiler_envelope", rows, meta);

  const std::string dir(::testing::TempDir());
  auto parsed = obs::ParseJsonFile(dir + "/BENCH_profiler_envelope.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  const Status envelope = obs::ValidateArtifactJson(doc);
  EXPECT_TRUE(envelope.ok()) << envelope.ToString();
  EXPECT_EQ(static_cast<int>(doc["schema_version"].AsNumber()),
            obs::kArtifactSchemaVersion);
  EXPECT_EQ(static_cast<int>(doc["meta"]["world_size"].AsNumber()), 8);
  EXPECT_EQ(doc["meta"]["preset"].AsString(), "profiler_test");

  // Malformed artifacts fail the schema check: missing envelope, wrong
  // version, meta of the wrong shape.
  auto no_envelope = obs::ParseJson("{\"bench\": \"x\", \"rows\": []}");
  ASSERT_TRUE(no_envelope.ok());
  EXPECT_FALSE(obs::ValidateArtifactJson(no_envelope.ValueOrDie()).ok());
  auto wrong_version = obs::ParseJson(
      "{\"schema_version\": 999, \"meta\": {\"world_size\": 1, \"ranks\": 1, "
      "\"preset\": \"p\"}}");
  ASSERT_TRUE(wrong_version.ok());
  EXPECT_FALSE(obs::ValidateArtifactJson(wrong_version.ValueOrDie()).ok());
  auto bad_meta = obs::ParseJson(
      "{\"schema_version\": 1, \"meta\": {\"world_size\": 1}}");
  ASSERT_TRUE(bad_meta.ok());
  EXPECT_FALSE(obs::ValidateArtifactJson(bad_meta.ValueOrDie()).ok());
}

}  // namespace
}  // namespace fsdp
