// The calibrated plan autotuner (src/tune): search-space mechanics, the
// analytic envelope pruner's soundness, search determinism, degenerate
// spaces, the TUNE_*.json artifact — and the two acceptance properties the
// subsystem exists for:
//
//  * on a T5-11B-like and a GPT-175B-like workload the tuned schedule
//    strictly beats EVERY hand-tuned preset on calibrated-sim step time
//    (and is no worse on exposed comm), because the grid reaches knob
//    combinations no single-knob preset expresses;
//  * the envelope pruner skips at least half of the raw candidate space
//    without ever pruning the eventual winner — proven three ways: the
//    winner itself was fully simulated (never carried a prune reason), every
//    full-scored candidate's analytic lower bound is <= its simulated time
//    (so bound-pruning cannot discard a potential winner), and a
//    memory-pruned candidate really does OOM when simulated at the same
//    capacity (the envelope's arena plan IS the simulator's reservation).
//
// Plus the end of the loop: the winning candidate's compiled StepPlan
// replayed through comm::ReplayPlan on 4 real ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "comm/plan_replay.h"
#include "common/threading.h"
#include "obs/artifact.h"
#include "obs/json.h"
#include "tune/tuner.h"

namespace fsdp {
namespace {

using tune::Autotune;
using tune::CandidateOutcome;
using tune::CompiledCandidate;
using tune::SearchSpace;
using tune::TuneCandidate;
using tune::TuneInputs;
using tune::TuneOptions;
using tune::TuneReport;

/// The T5-11B-like acceptance config: 2 hosts x 8 GPUs on a 100 GB/s
/// inter-host fabric (a calibrated-constants setting, not the paper
/// testbed's 2 Tb/s), batch 1, 80 GiB devices. Small batch leaves backward
/// re-gathers exposed, so the winning schedule combines intra-host hybrid
/// sharding with keep-after-forward — a two-knob combination no hand-tuned
/// preset expresses — while full-shard groups are bound-pruned and the
/// small sharding factors are memory-pruned.
TuneInputs T5LikeInputs() {
  TuneInputs in;
  in.workload = simfsdp::T5_11B();
  in.topo = sim::Topology{2, 8};
  in.base.batch_per_gpu = 1;
  in.constants.inter_host_bw_gbps = 100.0;
  in.capacity_bytes = int64_t{80} << 30;
  return in;
}

/// The GPT-175B-like acceptance config: 16 hosts x 8 GPUs at 100 GB/s,
/// batch 2, 80 GiB devices. At this scale only full sharding fits (keeping
/// 350 GB of parameters or sharding 8-way both blow the arena), so the
/// envelope memory-prunes most of the grid, and the winner strictly beats
/// the presets through overlap knobs (limiter off + reduce sinking).
TuneInputs GptLikeInputs() {
  TuneInputs in;
  in.workload = simfsdp::GPT_175B();
  in.topo = sim::Topology{16, 8};
  in.base.batch_per_gpu = 2;
  in.constants.inter_host_bw_gbps = 100.0;
  in.capacity_bytes = int64_t{80} << 30;
  return in;
}

/// A small, fast config for mechanics tests.
TuneInputs SmallInputs() {
  TuneInputs in;
  in.workload = simfsdp::T5_611M();
  in.topo = sim::Topology{1, 8};
  in.base.batch_per_gpu = 2;
  return in;
}

/// Every hand-tuned preset that was fully scored (feasible on this config).
std::vector<const CandidateOutcome*> ScoredPresets(const TuneReport& rep) {
  std::vector<const CandidateOutcome*> out;
  for (const CandidateOutcome& o : rep.outcomes) {
    if (o.stage == "preset" && o.full_score && !o.metrics.oom) {
      out.push_back(&o);
    }
  }
  return out;
}

/// Asserts the two acceptance properties on a finished report; returns the
/// winner's margin over the best preset (us).
double CheckAcceptance(const TuneReport& rep, double min_margin_us) {
  EXPECT_TRUE(rep.found);

  // -- tuned beats every hand-tuned preset, strictly on step time and no
  //    worse on exposed comm.
  const auto presets = ScoredPresets(rep);
  EXPECT_GE(presets.size(), 4u);  // the baseline is real, not vacuous
  double margin = 1e300;
  for (const CandidateOutcome* p : presets) {
    EXPECT_GT(p->metrics.iter_time_us,
              rep.winner_metrics.iter_time_us + min_margin_us)
        << "preset " << p->cand.name << " not strictly beaten";
    EXPECT_LE(rep.winner_metrics.exposed_comm_us,
              p->metrics.exposed_comm_us + 1e-6)
        << "preset " << p->cand.name << " has less exposed comm";
    margin = std::min(margin,
                      p->metrics.iter_time_us - rep.winner_metrics.iter_time_us);
  }

  // -- the envelope pruned at least half the raw space...
  const auto& c = rep.counts;
  EXPECT_GT(c.raw_candidates, 0);
  EXPECT_GE(2 * (c.memory_pruned + c.bound_pruned), c.raw_candidates)
      << "envelope pruned " << c.memory_pruned << "+" << c.bound_pruned
      << " of " << c.raw_candidates;

  // -- ...without ever pruning the eventual winner. (a) The winner was
  //    fully simulated, never carried a prune reason.
  bool winner_seen = false;
  for (const CandidateOutcome& o : rep.outcomes) {
    if (o.cand.Key() == rep.winner.cand.Key() && o.full_score) {
      winner_seen = true;
      EXPECT_EQ(o.pruned, "");
    }
  }
  EXPECT_TRUE(winner_seen);
  // (b) The analytic bound under-estimates every simulated time, so a
  //     candidate faster than the incumbent can never be bound-pruned.
  for (const CandidateOutcome& o : rep.outcomes) {
    if (o.full_score && !o.metrics.oom) {
      EXPECT_LE(o.env.step_lb_us, o.metrics.iter_time_us + 1e-3)
          << o.cand.Key();
    }
  }
  return margin;
}

// ---------------------------------------------------------------------------
// Search-space mechanics.

TEST(TuneSpaceTest, WrapGranularityMergesConsecutiveUnits) {
  simfsdp::Workload w = simfsdp::T5_611M();
  const size_t n = w.units.size();
  ASSERT_GE(n, 3u);
  int64_t total_params = 0;
  for (const auto& u : w.units) total_params += u.param_numel;

  simfsdp::Workload merged = tune::ApplyWrapGranularity(w, 2);
  EXPECT_EQ(merged.units.size(), (n + 1) / 2);
  int64_t merged_params = 0;
  for (const auto& u : merged.units) merged_params += u.param_numel;
  EXPECT_EQ(merged_params, total_params);  // wrapping moves, never drops
  EXPECT_EQ(merged.units[0].param_numel,
            w.units[0].param_numel + w.units[1].param_numel);

  // wrap=1 is the identity; an over-large factor degenerates to one unit.
  EXPECT_EQ(tune::ApplyWrapGranularity(w, 1).units.size(), n);
  EXPECT_EQ(tune::ApplyWrapGranularity(w, int(n) + 7).units.size(), 1u);
}

TEST(TuneSpaceTest, EnumerateMatchesRawSizeWithUniqueKeys) {
  const SearchSpace space = SearchSpace::Default(sim::Topology{2, 8});
  const auto all = tune::EnumerateCandidates(space);
  EXPECT_EQ(int64_t(all.size()), space.RawSize());
  std::set<std::string> keys;
  for (const auto& c : all) keys.insert(c.Key());
  EXPECT_EQ(int64_t(keys.size()), space.RawSize());  // Key() is injective
}

TEST(TuneSpaceTest, DefaultSpaceShardingFactorsDivideWorld) {
  const SearchSpace space = SearchSpace::Default(sim::Topology{2, 8});
  for (int f : space.sharding_factor) {
    if (f > 0) EXPECT_EQ(16 % f, 0) << f;
  }
  // Full shard is always present; a single-host topology offers no hybrid
  // factor equal to its world.
  EXPECT_TRUE(std::count(space.sharding_factor.begin(),
                         space.sharding_factor.end(), 0));
}

TEST(TuneSpaceTest, NeighborsDifferInExactlyOneKnob) {
  const SearchSpace space = SearchSpace::Default(sim::Topology{2, 8});
  TuneCandidate c;  // defaults sit inside every dimension
  const auto neighbors = tune::NeighborCandidates(space, c);
  EXPECT_FALSE(neighbors.empty());
  std::set<std::string> keys;
  for (const auto& n : neighbors) {
    EXPECT_TRUE(keys.insert(n.Key()).second);
    EXPECT_NE(n.Key(), c.Key());
    int diffs = 0;
    diffs += n.backward_prefetch != c.backward_prefetch;
    diffs += n.forward_prefetch != c.forward_prefetch;
    diffs += n.limit_all_gathers != c.limit_all_gathers;
    diffs += n.sharding_factor != c.sharding_factor;
    diffs += n.reshard_after_forward != c.reshard_after_forward;
    diffs += n.wrap_blocks_per_unit != c.wrap_blocks_per_unit;
    diffs += n.fuse_below_bytes != c.fuse_below_bytes;
    diffs += n.max_hoist_computes != c.max_hoist_computes;
    diffs += n.max_sink_computes != c.max_sink_computes;
    EXPECT_EQ(diffs, 1) << n.Key();
  }
}

TEST(TuneSpaceTest, CompileRejectsInvalidCombinations) {
  const TuneInputs in = SmallInputs();
  CompiledCandidate cc;

  // F=1 keeps units resident (kKeepUnsharded), so with forward resharding
  // also off, nothing ever frees an unsharded buffer and the rate limiter's
  // gates would starve — the builder must reject, not abort.
  TuneCandidate bad;
  bad.sharding_factor = 1;
  bad.limit_all_gathers = 2;
  bad.reshard_after_forward = false;
  EXPECT_FALSE(tune::CompileCandidate(bad, in, &cc).ok());

  TuneCandidate nondiv;  // sharding factor must divide the world
  nondiv.sharding_factor = 3;
  EXPECT_FALSE(tune::CompileCandidate(nondiv, in, &cc).ok());

  TuneCandidate ok = bad;  // forward resharding feeds the limiter again
  ok.reshard_after_forward = true;
  ASSERT_TRUE(tune::CompileCandidate(ok, in, &cc).ok());
  EXPECT_GT(cc.plan.size(), 0);
  EXPECT_TRUE(cc.config.static_memory_plan);
}

// ---------------------------------------------------------------------------
// Envelope soundness.

TEST(TuneEnvelopeTest, LowerBoundsSimulatedTimeAcrossTheGrid) {
  const TuneInputs in = SmallInputs();
  int checked = 0;
  for (const TuneCandidate& cand :
       tune::EnumerateCandidates(SearchSpace::Default(in.topo))) {
    // Spot-check a deterministic slice of the grid to stay fast.
    if (++checked % 37 != 0) continue;
    CompiledCandidate cc;
    if (!tune::CompileCandidate(cand, in, &cc).ok()) continue;
    const tune::Envelope env = tune::ComputeEnvelope(cc, in);
    if (!env.memory_feasible) continue;
    simfsdp::FsdpSimulator sim(cc.workload, in.topo, in.constants, cc.config,
                               cc.plan);
    const simfsdp::SimMetrics m = sim.Run();
    ASSERT_FALSE(m.oom) << cand.Key();
    EXPECT_LE(env.step_lb_us, m.iter_time_us + 1e-3) << cand.Key();
    EXPECT_GT(env.step_lb_us, 0.0) << cand.Key();
  }
  EXPECT_GT(checked, 100);
}

TEST(TuneEnvelopeTest, MemoryPrunedCandidatesAreNeverSimulatedAndDoOom) {
  TuneInputs in;
  in.workload = simfsdp::T5_11B();
  in.topo = sim::Topology{2, 8};
  in.base.batch_per_gpu = 8;
  in.capacity_bytes = int64_t{40} << 30;  // keep-after-forward etc. blow this

  std::set<std::string> simulated;
  TuneOptions opt;
  opt.sim_observer = [&](const TuneCandidate& c, int) {
    simulated.insert(c.Key());
  };
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), opt);

  ASSERT_GT(rep.counts.memory_pruned, 0);
  const CandidateOutcome* mem_pruned = nullptr;
  for (const CandidateOutcome& o : rep.outcomes) {
    if (o.pruned == "memory") {
      EXPECT_EQ(simulated.count(o.cand.Key()), 0u) << o.cand.Key();
      EXPECT_FALSE(o.simulated);
      if (!mem_pruned) mem_pruned = &o;
    } else if (o.simulated) {
      EXPECT_EQ(simulated.count(o.cand.Key()), 1u) << o.cand.Key();
    }
  }

  // The prune was not a guess: simulating a memory-pruned candidate at the
  // same capacity really does OOM (the envelope's arena plan is the
  // simulator's reservation, byte for byte).
  ASSERT_NE(mem_pruned, nullptr);
  TuneInputs direct = in;
  direct.constants.hbm_bytes = in.capacity_bytes;
  CompiledCandidate cc;
  ASSERT_TRUE(tune::CompileCandidate(mem_pruned->cand, direct, &cc).ok());
  simfsdp::FsdpSimulator sim(cc.workload, direct.topo, direct.constants,
                             cc.config, cc.plan);
  EXPECT_TRUE(sim.Run().oom);
}

// ---------------------------------------------------------------------------
// Search behavior.

TEST(TuneSearchTest, DeterministicForAFixedSeed) {
  const TuneInputs in = SmallInputs();
  const SearchSpace space = SearchSpace::Default(in.topo);
  TuneOptions opt;
  opt.seed = 7;
  opt.mutation_rounds = 2;

  const TuneReport a = Autotune(in, space, opt);
  const TuneReport b = Autotune(in, space, opt);
  ASSERT_TRUE(a.found);
  EXPECT_EQ(a.winner.cand.Key(), b.winner.cand.Key());
  EXPECT_EQ(a.winner_metrics.iter_time_us, b.winner_metrics.iter_time_us);
  EXPECT_EQ(a.counts.sim_runs, b.counts.sim_runs);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].cand.Key(), b.outcomes[i].cand.Key()) << i;
    EXPECT_EQ(a.outcomes[i].pruned, b.outcomes[i].pruned) << i;
    EXPECT_EQ(a.outcomes[i].stage, b.outcomes[i].stage) << i;
  }
}

TEST(TuneSearchTest, SingleCandidateSpaceReturnsThatCandidate) {
  const TuneInputs in = SmallInputs();
  SearchSpace space;
  space.backward_prefetch = {1};
  space.forward_prefetch = {0};
  space.limit_all_gathers = {2};
  space.sharding_factor = {0};
  space.reshard_after_forward = {1};
  space.wrap_blocks_per_unit = {1};
  space.fuse_below_bytes = {0};
  space.max_hoist_computes = {0};
  space.max_sink_computes = {0};
  ASSERT_EQ(space.RawSize(), 1);

  const TuneReport rep = Autotune(in, space, {});
  ASSERT_TRUE(rep.found);
  EXPECT_FALSE(rep.winner_metrics.oom);
  // The grid's lone point was fully scored (it is the only finalist), and
  // the winner — that point or a hand-tuned preset, which always compete —
  // is at least as fast.
  const CandidateOutcome* grid = nullptr;
  int grid_outcomes = 0;
  for (const CandidateOutcome& o : rep.outcomes) {
    if (o.stage == "grid") {
      ++grid_outcomes;
      grid = &o;
    }
  }
  ASSERT_EQ(grid_outcomes, 1);
  EXPECT_TRUE(grid->full_score);
  EXPECT_LE(rep.winner_metrics.iter_time_us, grid->metrics.iter_time_us);
}

TEST(TuneSearchTest, AllInfeasibleSpaceReportsNotFound) {
  TuneInputs in = SmallInputs();
  in.capacity_bytes = int64_t{1} << 30;  // under the persistent framework base
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), {});
  EXPECT_FALSE(rep.found);
  // Presets are always fully scored, so the all-infeasible verdict comes
  // from simulated OOMs there and memory prunes on the entire grid.
  EXPECT_EQ(rep.counts.memory_pruned, rep.counts.raw_candidates -
                                          rep.counts.invalid);
}

TEST(TuneSearchTest, TimeBudgetDegradesGracefully) {
  TuneInputs in = SmallInputs();
  TuneOptions opt;
  opt.time_budget_ms = 1;  // presets always score; the grid gets cut short
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), opt);
  EXPECT_TRUE(rep.found);  // never worse than the best preset
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_GT(rep.counts.budget_skipped, 0);
}

// ---------------------------------------------------------------------------
// Acceptance: tuned beats every hand-tuned preset while the envelope prunes
// at least half the raw space, on two workloads.

TEST(TuneAcceptanceTest, T5LikeTunedBeatsEveryPresetWithHalfTheSpacePruned) {
  const TuneInputs in = T5LikeInputs();
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), {});
  const double margin = CheckAcceptance(rep, /*min_margin_us=*/100.0);
  // The probed margin is ~26 ms/iteration; assert a generous floor so cost
  // model refinements don't flake the suite.
  EXPECT_GT(margin, 1000.0);
  // The winner reaches a combination no preset expresses: intra-host hybrid
  // sharding together with keep-after-forward.
  EXPECT_EQ(rep.winner.cand.sharding_factor, 8);
  EXPECT_FALSE(rep.winner.cand.reshard_after_forward);
  // Both pruning mechanisms fired: small factors by memory, full-shard
  // groups by the comm lower bound.
  EXPECT_GT(rep.counts.memory_pruned, 0);
  EXPECT_GT(rep.counts.bound_pruned, 0);
}

TEST(TuneAcceptanceTest, GptLikeTunedBeatsEveryPresetWithHalfTheSpacePruned) {
  const TuneInputs in = GptLikeInputs();
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), {});
  const double margin = CheckAcceptance(rep, /*min_margin_us=*/100.0);
  EXPECT_GT(margin, 10000.0);  // probed ~243 ms/iteration
  // At 175B scale only full sharding fits in 80 GiB.
  EXPECT_EQ(rep.winner.cand.sharding_factor, 0);
  EXPECT_GT(rep.counts.memory_pruned, 0);
}

// ---------------------------------------------------------------------------
// The end of the loop: the winning schedule is executable by the real
// collective runtime.

TEST(TuneReplayTest, WinnerPlanReplaysOnFourRealRanks) {
  TuneInputs in;
  in.workload = simfsdp::T5_611M();
  in.topo = sim::Topology{1, 4};
  in.base.batch_per_gpu = 2;
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), {});
  ASSERT_TRUE(rep.found);
  ASSERT_GT(rep.winner.plan.size(), 0);

  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  comm->SetName("tune-replay");
  std::vector<Status> status(w);
  RunOnRanks(w, [&](int r) {
    comm::ReplayOptions ro;
    ro.unit_numel = 64;
    ro.timeout_ms = 30000;
    status[r] = comm::ReplayPlan(comm::ProcessGroup(comm, r),
                                 rep.winner.plan, ro);
  });
  for (int r = 0; r < w; ++r) {
    EXPECT_TRUE(status[r].ok()) << "rank " << r << ": "
                                << status[r].ToString();
  }
  EXPECT_FALSE(comm->aborted());

  // The ready-to-apply bundle round-trips the winning knobs.
  const tune::RuntimeKnobs knobs = tune::ToRuntimeKnobs(rep.winner, in.topo);
  EXPECT_EQ(knobs.sharding_factor == in.topo.world(),
            rep.winner.cand.sharding_factor == 0 ||
                rep.winner.cand.sharding_factor == in.topo.world());
  EXPECT_EQ(knobs.backward_prefetch, rep.winner.cand.backward_prefetch);
  EXPECT_FALSE(knobs.Describe().empty());
}

// ---------------------------------------------------------------------------
// Artifact.

TEST(TuneArtifactTest, WriteTuneJsonEmitsValidatedEnvelope) {
  const TuneInputs in = SmallInputs();
  const TuneReport rep = Autotune(in, SearchSpace::Default(in.topo), {});
  ASSERT_TRUE(rep.found);

  obs::ArtifactMeta meta;
  meta.world_size = in.topo.world();
  meta.preset = "tune_test";
  const std::string path = tune::WriteTuneJson("tune_test", rep, meta);

  auto parsed = obs::ParseJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  const Status envelope = obs::ValidateArtifactJson(doc);
  EXPECT_TRUE(envelope.ok()) << envelope.ToString();
  EXPECT_TRUE(doc["found"].AsBool());
  EXPECT_EQ(doc["winner"]["candidate"]["key"].AsString(),
            rep.winner.cand.Key());
  EXPECT_EQ(int64_t(doc["counts"]["raw_candidates"].AsNumber()),
            rep.counts.raw_candidates);
  EXPECT_EQ(doc["outcomes"].AsArray().size(), rep.outcomes.size());
}

}  // namespace
}  // namespace fsdp
