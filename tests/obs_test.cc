// Tests for the observability layer (src/obs): typed trace spans emitted by
// a real multi-rank FSDP step, the Chrome-trace exporter (validated with the
// in-repo JSON parser), metrics registry semantics, and clear/reset behavior.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "bench/bench_util.h"
#include "core/fsdp.h"
#include "nn/transformer.h"
#include "obs/chrome_trace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "simfsdp/schedule.h"
#include "simfsdp/workload.h"

namespace fsdp {
namespace {

// Runs one forward+backward of a small auto-wrapped transformer on `world`
// rank threads. Returns rank 0's FsdpState string/typed logs via out-params.
void RunStep(int world, core::FsdpOptions opts,
             std::vector<std::string>* events_out = nullptr,
             std::vector<obs::TraceEvent>* trace_out = nullptr,
             int num_layers = 2, int steps = 1) {
  comm::DeviceMesh mesh(world, world);
  RunOnRanks(world, [&](int rank) {
    nn::InitCtx ctx(Device::kCpu, 7);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 17;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = num_layers;
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    auto state = core::FullyShard(model, mesh, rank, opts);
    Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    for (int s = 0; s < steps; ++s) {
      Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
      autograd::RunBackward(loss);
    }
    if (rank == 0) {
      if (events_out) *events_out = state->events();
      if (trace_out) *trace_out = state->trace_events();
    }
  });
}

core::FsdpOptions BlockWrapOptions() {
  core::FsdpOptions opts;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
  return opts;
}

const obs::TraceEvent* Find(const std::vector<obs::TraceEvent>& events,
                            obs::EventKind kind, const std::string& unit,
                            const std::string& lane) {
  for (const auto& e : events) {
    if (e.kind == kind && e.unit == unit && e.lane == lane) return &e;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// (a) Span nesting and ordering across a 4-rank FSDP step.

TEST(ObsTraceTest, FourRankStepSpansNestAndOrder) {
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  collector.set_enabled(true);
  const int world = 4;
  RunStep(world, BlockWrapOptions());
  collector.set_enabled(false);

  for (int r = 0; r < world; ++r) {
    SCOPED_TRACE("rank " + std::to_string(r));
    auto events = collector.SnapshotRank(r);
    ASSERT_FALSE(events.empty());
    for (const auto& e : events) {
      EXPECT_EQ(e.rank, r);
      EXPECT_GE(e.t_end_us, e.t_begin_us);  // spans are well-formed
    }

    // Nesting: the root's compute-lane forward span must contain every
    // block's compute span (blocks run inside the root forward).
    const auto* root = Find(events, obs::EventKind::kForward, "[root]",
                            "compute");
    ASSERT_NE(root, nullptr);
    for (const char* unit : {"blocks.0", "blocks.1"}) {
      const auto* blk = Find(events, obs::EventKind::kForward, unit,
                             "compute");
      ASSERT_NE(blk, nullptr) << unit;
      EXPECT_LE(root->t_begin_us, blk->t_begin_us);
      EXPECT_GE(root->t_end_us, blk->t_end_us);
    }

    // Ordering: each unit's AllGather completes before its forward fires,
    // and blocks run in definition order.
    const auto* fwd0 = Find(events, obs::EventKind::kForward, "blocks.0",
                            "runtime");
    const auto* fwd1 = Find(events, obs::EventKind::kForward, "blocks.1",
                            "runtime");
    ASSERT_NE(fwd0, nullptr);
    ASSERT_NE(fwd1, nullptr);
    EXPECT_LT(fwd0->t_begin_us, fwd1->t_begin_us);
    for (const char* unit : {"blocks.0", "blocks.1"}) {
      const auto* ag = Find(events, obs::EventKind::kAllGather, unit,
                            "runtime");
      const auto* fwd = Find(events, obs::EventKind::kForward, unit,
                             "runtime");
      ASSERT_NE(ag, nullptr) << unit;
      EXPECT_GT(ag->bytes, 0) << unit;
      EXPECT_LE(ag->t_end_us, fwd->t_begin_us) << unit;
    }
  }

  // The merged snapshot covers all ranks and is sorted by begin time.
  auto all = collector.Snapshot();
  for (int r = 0; r < world; ++r) {
    EXPECT_TRUE(std::any_of(all.begin(), all.end(),
                            [r](const obs::TraceEvent& e) {
                              return e.rank == r;
                            }))
        << "no events for rank " << r;
  }
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].t_begin_us, all[i].t_begin_us);
  }
  collector.Clear();
}

// ---------------------------------------------------------------------------
// (b) Chrome-trace JSON export parses and the X events match the snapshot.

TEST(ObsTraceTest, ChromeTraceJsonParsesWithMatchedEvents) {
  std::vector<obs::TraceEvent> events = {
      {0, obs::EventKind::kAllGather, "blocks.0", "comm", 10.0, 35.5, 4096},
      {0, obs::EventKind::kForward, "blocks.0", "compute", 36.0, 90.0, 0},
      {1, obs::EventKind::kReduceScatter, "blocks.1", "comm", 12.0, 44.0,
       2048},
  };
  auto parsed = obs::ParseJson(obs::ChromeTraceJson(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  ASSERT_TRUE(doc.Has("traceEvents"));
  EXPECT_EQ(doc["displayTimeUnit"].AsString(), "ms");

  int x_events = 0, meta_events = 0;
  for (const auto& ev : doc["traceEvents"].AsArray()) {
    const std::string& ph = ev["ph"].AsString();
    if (ph == "M") {
      ++meta_events;
      EXPECT_TRUE(ev["name"].AsString() == "process_name" ||
                  ev["name"].AsString() == "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    const auto& src = events[x_events];
    EXPECT_EQ(ev["name"].AsString(), obs::RenderEvent(src));
    EXPECT_EQ(ev["cat"].AsString(), obs::EventKindName(src.kind));
    EXPECT_DOUBLE_EQ(ev["ts"].AsNumber(), src.t_begin_us);
    EXPECT_DOUBLE_EQ(ev["dur"].AsNumber(), src.duration_us());
    EXPECT_EQ(static_cast<int>(ev["pid"].AsNumber()), src.rank);
    EXPECT_EQ(static_cast<int64_t>(ev["args"]["bytes"].AsNumber()),
              src.bytes);
    ++x_events;
  }
  EXPECT_EQ(x_events, 3);
  // 2 processes + 3 distinct (rank, lane) thread lanes.
  EXPECT_EQ(meta_events, 5);
}

// A simulated Fig-5 run exports a valid trace in which AllGather spans
// (comm lane) overlap compute spans — the paper's Sec 3.3 overlap claim,
// asserted on span intervals.
TEST(ObsTraceTest, SimulatedFig5TraceShowsAllGatherComputeOverlap) {
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  simfsdp::FsdpSimConfig cfg;
  cfg.backward_prefetch = true;
  cfg.iterations = 1;
  cfg.record_trace = true;
  sim::SimConstants c;
  simfsdp::FsdpSimulator(simfsdp::T5_11B(), sim::Topology{2, 8}, c, cfg)
      .Run();
  auto events = collector.Snapshot();
  ASSERT_FALSE(events.empty());

  bool overlap = false;
  for (const auto& ag : events) {
    if (ag.kind != obs::EventKind::kAllGather || ag.lane != "comm") continue;
    for (const auto& cp : events) {
      if (cp.lane != "compute") continue;
      if (cp.kind != obs::EventKind::kForward &&
          cp.kind != obs::EventKind::kBackward) {
        continue;
      }
      if (ag.t_begin_us < cp.t_end_us && cp.t_begin_us < ag.t_end_us) {
        overlap = true;
        break;
      }
    }
    if (overlap) break;
  }
  EXPECT_TRUE(overlap)
      << "no AllGather span overlaps a compute span in the simulated trace";

  // The virtual-time trace round-trips through the Chrome exporter.
  auto parsed = obs::ParseJson(obs::ChromeTraceJson(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  size_t x_events = 0;
  for (const auto& ev : parsed.ValueOrDie()["traceEvents"].AsArray()) {
    if (ev["ph"].AsString() == "X") ++x_events;
  }
  EXPECT_EQ(x_events, events.size());
  collector.Clear();
}

// ---------------------------------------------------------------------------
// (c) Histogram percentile semantics on known inputs.

TEST(ObsMetricsTest, HistogramPercentilesOnKnownInputs) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // no samples
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);  // nearest-rank
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);

  obs::Histogram single;
  single.Observe(42.0);
  EXPECT_DOUBLE_EQ(single.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(single.Percentile(95), 42.0);

  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

// The registry binds a name to one metric type and hands out stable refs.
TEST(ObsMetricsTest, RegistryNamesAreStable) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter& c1 = reg.GetCounter("obs_test.stable");
  obs::Counter& c2 = reg.GetCounter("obs_test.stable");
  EXPECT_EQ(&c1, &c2);
}

// Metrics written by the runtime round-trip through the JSON snapshot.
TEST(ObsMetricsTest, RuntimeMetricsRoundTripThroughJsonSnapshot) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.ResetAll();

  // A 2-rank run with a depth-1 rate limiter and both prefetchers forces
  // throttled prefetches from the second iteration on (forward prefetch
  // needs a recorded order); every unshard feeds comm.allgather.*.
  core::FsdpOptions opts = BlockWrapOptions();
  opts.limit_all_gathers = 1;
  opts.backward_prefetch = true;
  opts.forward_prefetch = true;
  RunStep(2, opts, nullptr, nullptr, /*num_layers=*/4, /*steps=*/3);

  const int64_t throttled =
      reg.GetCounter("fsdp.throttled_prefetches").value();
  const int64_t ag_count = reg.GetCounter("comm.allgather.count").value();
  const int64_t ag_bytes = reg.GetCounter("comm.allgather.bytes").value();
  EXPECT_GT(throttled, 0);
  EXPECT_GT(ag_count, 0);
  EXPECT_GT(ag_bytes, 0);

  // A simulator run publishes the allocator peaks as gauges.
  simfsdp::FsdpSimConfig scfg;
  scfg.iterations = 1;
  sim::SimConstants c;
  auto m = simfsdp::FsdpSimulator(simfsdp::T5_11B(), sim::Topology{1, 8}, c,
                                  scfg)
               .Run();
  EXPECT_EQ(reg.GetGauge("alloc.allocated.peak").value(), m.peak_allocated);
  EXPECT_EQ(reg.GetGauge("alloc.active.peak").value(), m.peak_active);
  EXPECT_EQ(reg.GetGauge("alloc.reserved.peak").value(), m.peak_reserved);

  reg.GetHistogram("obs_test.latency").Observe(5.0);
  reg.GetHistogram("obs_test.latency").Observe(15.0);

  auto parsed = obs::ParseJson(reg.SnapshotJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  EXPECT_EQ(static_cast<int64_t>(
                doc["counters"]["fsdp.throttled_prefetches"].AsNumber()),
            throttled);
  EXPECT_EQ(static_cast<int64_t>(
                doc["counters"]["comm.allgather.count"].AsNumber()),
            ag_count);
  EXPECT_EQ(static_cast<int64_t>(
                doc["counters"]["comm.allgather.bytes"].AsNumber()),
            ag_bytes);
  EXPECT_EQ(static_cast<int64_t>(
                doc["gauges"]["alloc.allocated.peak"].AsNumber()),
            m.peak_allocated);
  EXPECT_EQ(static_cast<int64_t>(
                doc["gauges"]["alloc.reserved.peak"].AsNumber()),
            m.peak_reserved);
  const auto& hist = doc["histograms"]["obs_test.latency"];
  EXPECT_EQ(static_cast<int>(hist["count"].AsNumber()), 2);
  EXPECT_DOUBLE_EQ(hist["sum"].AsNumber(), 20.0);
  EXPECT_DOUBLE_EQ(hist["max"].AsNumber(), 15.0);
}

// The BENCH_<name>.json writer the fig benches use produces output the
// in-repo parser accepts, with fields round-tripping.
TEST(ObsMetricsTest, BenchJsonWriterRoundTrips) {
  std::vector<bench::JsonRow> rows;
  rows.push_back(bench::JsonRow()
                     .Set("model", "T5-11B \"quoted\"")
                     .Set("nodes", 2)
                     .Set("speedup", 2.5)
                     .Set("oom", false));
  rows.push_back(bench::JsonRow().Set("bytes", int64_t{1} << 40));
  bench::WriteBenchJson("obs_test", rows);

  auto parsed = obs::ParseJsonFile("BENCH_obs_test.json");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const obs::JsonValue& doc = parsed.ValueOrDie();
  EXPECT_EQ(doc["bench"].AsString(), "obs_test");
  // Every bench artifact carries the shared schema envelope.
  const Status envelope = obs::ValidateArtifactJson(doc);
  EXPECT_TRUE(envelope.ok()) << envelope.ToString();
  EXPECT_EQ(static_cast<int>(doc["schema_version"].AsNumber()),
            obs::kArtifactSchemaVersion);
  const auto& out = doc["rows"].AsArray();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]["model"].AsString(), "T5-11B \"quoted\"");
  EXPECT_DOUBLE_EQ(out[0]["nodes"].AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(out[0]["speedup"].AsNumber(), 2.5);
  EXPECT_FALSE(out[0]["oom"].AsBool());
  EXPECT_DOUBLE_EQ(out[1]["bytes"].AsNumber(),
                   static_cast<double>(int64_t{1} << 40));
  std::remove("BENCH_obs_test.json");
}

// The shared envelope is backward compatible only: a document stamped by a
// NEWER writer must be rejected (this reader cannot know what its fields
// mean), anything in [1, current] accepted, and non-versions refused.
TEST(ObsMetricsTest, ValidateArtifactRejectsForwardIncompatibleVersions) {
  const std::string body =
      ", \"meta\": {\"world_size\": 1, \"ranks\": 1, \"preset\": \"p\"}}";

  auto with_version = [&](int v) {
    auto parsed =
        obs::ParseJson("{\"schema_version\": " + std::to_string(v) + body);
    EXPECT_TRUE(parsed.ok());
    return obs::ValidateArtifactJson(parsed.ValueOrDie());
  };

  EXPECT_TRUE(with_version(obs::kArtifactSchemaVersion).ok());
  EXPECT_TRUE(with_version(1).ok());  // oldest envelope stays readable

  const Status newer = with_version(obs::kArtifactSchemaVersion + 1);
  EXPECT_FALSE(newer.ok());
  EXPECT_NE(newer.message().find("newer than this reader"),
            std::string::npos)
      << newer.ToString();
  EXPECT_FALSE(with_version(obs::kArtifactSchemaVersion + 1000).ok());

  EXPECT_FALSE(with_version(0).ok());
  EXPECT_FALSE(with_version(-3).ok());
}

// ---------------------------------------------------------------------------
// (d) Clear/reset semantics across all three surfaces.

TEST(ObsResetTest, ClearEventsAndCollectorAndRegistryReset) {
  auto& collector = obs::TraceCollector::Get();
  collector.Clear();
  collector.set_enabled(true);

  const int world = 2;
  comm::DeviceMesh mesh(world, world);
  RunOnRanks(world, [&](int rank) {
    nn::InitCtx ctx(Device::kCpu, 7);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 17;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    auto state = core::FullyShard(model, mesh, rank, BlockWrapOptions());
    Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
    autograd::RunBackward(loss);

    // The string log is a thin rendering of the typed log: same length,
    // entry i renders entry i.
    const auto& strings = state->events();
    const auto& typed = state->trace_events();
    if (rank == 0) {
      EXPECT_FALSE(strings.empty());
      ASSERT_EQ(strings.size(), typed.size());
      for (size_t i = 0; i < typed.size(); ++i) {
        EXPECT_EQ(strings[i], obs::RenderEvent(typed[i])) << "index " << i;
      }
    }

    // ClearEvents drops both views; the state remains usable afterwards.
    state->ClearEvents();
    EXPECT_TRUE(state->events().empty());
    EXPECT_TRUE(state->trace_events().empty());
    Tensor loss2 = ops::CrossEntropy((*model)(tokens), targets);
    autograd::RunBackward(loss2);
    EXPECT_FALSE(state->events().empty());
    EXPECT_EQ(state->events().size(), state->trace_events().size());
  });
  collector.set_enabled(false);

  EXPECT_GT(collector.size(), 0u);
  collector.Clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());

  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter& counter = reg.GetCounter("obs_test.reset");
  counter.Add(5);
  obs::Gauge& gauge = reg.GetGauge("obs_test.reset_gauge");
  gauge.Set(9);
  reg.ResetAll();
  EXPECT_EQ(counter.value(), 0);
  EXPECT_EQ(gauge.value(), 0);
  counter.Add(2);  // cached references survive ResetAll
  EXPECT_EQ(counter.value(), 2);
  EXPECT_EQ(&counter, &reg.GetCounter("obs_test.reset"));
}

}  // namespace
}  // namespace fsdp
