// Non-trainable buffer handling: the sinusoidal positional-encoding module,
// FSDP buffer_dtype casting (Sec 4.4), DDP buffer broadcast, and buffers in
// full state dicts.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "ddp/ddp.h"
#include "nn/layers.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

struct PosEncModel : nn::Module {
  std::shared_ptr<nn::SinusoidalPositionalEncoding> pe;
  std::shared_ptr<nn::Linear> proj;
  explicit PosEncModel(nn::InitCtx& ctx) {
    pe = std::make_shared<nn::SinusoidalPositionalEncoding>(8, 6, ctx);
    proj = std::make_shared<nn::Linear>(6, 4, true, ctx);
    RegisterModule("pe", pe);
    RegisterModule("proj", proj);
  }
  Tensor Forward(const Tensor& x) override {
    Tensor h = (*pe)(x);
    return (*proj)(ops::Reshape(h, {h.size(0) * h.size(1), h.size(2)}));
  }
  std::string TypeName() const override { return "PosEncModel"; }
};

TEST(BufferTest, SinusoidalValuesAndNoGradient) {
  nn::InitCtx ctx(Device::kCpu, 1);
  nn::SinusoidalPositionalEncoding pe(16, 8, ctx);
  // pos 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
  EXPECT_FLOAT_EQ(pe.table().at({0, 0}), 0.f);
  EXPECT_FLOAT_EQ(pe.table().at({0, 1}), 1.f);
  EXPECT_NEAR(pe.table().at({1, 0}), std::sin(1.0), 1e-6);
  // Registered as buffer, not parameter.
  EXPECT_EQ(pe.NamedParameters().size(), 0u);
  ASSERT_EQ(pe.NamedBuffers().size(), 1u);
  EXPECT_EQ(pe.NamedBuffers()[0].first, "table");

  // Gradient flows through the add to the input, not to the buffer.
  Rng rng(2, 0);
  Tensor x = Tensor::Randn({2, 4, 8}, rng);
  x.set_requires_grad(true);
  Tensor y = pe(x);
  autograd::RunBackward(ops::Sum(ops::Reshape(y, {2 * 4 * 8})));
  EXPECT_TRUE(x.grad().defined());
  EXPECT_FALSE(pe.table().grad().defined());
  EXPECT_FALSE(pe.table().requires_grad());
}

TEST(BufferTest, FsdpBufferDtypeCastsOnce) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 3);
    auto model = std::make_shared<PosEncModel>(ctx);
    core::FsdpOptions opts;
    opts.mixed_precision.param_dtype = DType::kBF16;
    opts.mixed_precision.buffer_dtype = DType::kBF16;
    auto state = core::FullyShard(model, mesh, r, opts);
    (void)state;
    // Every buffer value is now exactly bf16-representable.
    const Tensor& t = model->pe->table();
    for (int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_EQ(t.data()[i], QuantizeBF16(t.data()[i])) << i;
    }
  });
}

TEST(BufferTest, FsdpStateDictIncludesBuffers) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 4);
    auto model = std::make_shared<PosEncModel>(ctx);
    auto state = core::FullyShard(model, mesh, r, {});
    auto sd = state->FullStateDict();
    bool found = false;
    for (auto& [fqn, value] : sd) {
      if (fqn == "pe.table") {
        found = true;
        ASSERT_TRUE(value.AllClose(model->pe->table(), 0, 0));
      }
    }
    ASSERT_TRUE(found) << "buffer missing from state dict";
    // Round trip through load.
    Tensor before = model->pe->table().Clone();
    model->pe->table().Fill_(0.f);
    state->LoadFullStateDict(sd);
    ASSERT_TRUE(model->pe->table().AllClose(before, 0, 0));
  });
}

TEST(BufferTest, DdpBroadcastsBuffers) {
  const int w = 3;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 5);
    auto model = std::make_shared<PosEncModel>(ctx);
    // Desynchronize buffers before wrapping.
    model->pe->table().Mul_(static_cast<float>(r + 1));
    ddp::DistributedDataParallel ddp(model, comm::ProcessGroup(comm, r));
    // After construction all ranks hold rank 0's buffer (scaled by 1).
    nn::InitCtx ref_ctx(Device::kCpu, 5);
    nn::SinusoidalPositionalEncoding ref(8, 6, ref_ctx);
    ASSERT_TRUE(model->pe->table().AllClose(ref.table(), 0, 0))
        << "rank " << r;
  });
}

TEST(BufferTest, TrainingWithBufferModelUnderFsdpMatchesLocal) {
  const int w = 2;
  // Local reference.
  std::vector<Tensor> ref_grads;
  {
    nn::InitCtx ctx(Device::kCpu, 6);
    PosEncModel model(ctx);
    for (int r = 0; r < w; ++r) {
      Rng rng(10 + r, 0);
      Tensor x = Tensor::Randn({1, 4, 6}, rng);
      Tensor y = model(x);
      autograd::RunBackward(
          ops::ScalarMul(ops::Sum(ops::Mul(y, y)), 1.f / w));
    }
    for (Tensor* slot : model.ParameterSlots()) {
      ref_grads.push_back(slot->grad());
    }
  }
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 6);
    auto model = std::make_shared<PosEncModel>(ctx);
    auto state = core::FullyShard(model, mesh, r, {});
    Rng rng(10 + r, 0);
    Tensor x = Tensor::Randn({1, 4, 6}, rng);
    Tensor y = (*model)(x);
    autograd::RunBackward(ops::Sum(ops::Mul(y, y)));
    auto grads = state->unit_handle(0).GatherFullGrads();
    ASSERT_EQ(grads.size(), ref_grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      ASSERT_TRUE(grads[i].second.AllClose(ref_grads[i], 1e-4f, 1e-5f))
          << grads[i].first;
    }
  });
}

}  // namespace
}  // namespace fsdp
