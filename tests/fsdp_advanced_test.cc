// Advanced FSDP features: the functional fully_shard frontend, sharded
// optimizer-state checkpointing (including cross-world-size and
// cross-wrapping resharding), dynamic graphs with execution-order
// validation, and end-to-end checkpoint/restore equivalence.
#include <gtest/gtest.h>

#include <map>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "core/optim_state.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using core::FsdpOptions;
using core::FsdpState;
using core::FullyShard;
using core::FullyShardedDataParallel;

nn::ModulePtr MakeModel(uint64_t seed) {
  nn::InitCtx ctx(Device::kCpu, seed);
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  return std::make_shared<nn::TransformerModel>(cfg, ctx);
}

Tensor RankTokens(int rank) {
  return ops::IndexTensor({(rank * 3 + 1) % 13, (rank * 5 + 2) % 13,
                           (rank * 7 + 3) % 13, (rank + 4) % 13},
                          {1, 4});
}

Tensor RankTargets(int rank) {
  return ops::IndexTensor({(rank + 5) % 13, (rank + 6) % 13, (rank + 7) % 13,
                           (rank + 8) % 13},
                          {4});
}

FsdpOptions BlockOpts() {
  FsdpOptions opts;
  opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
  return opts;
}

/// Local Adam reference returning (params, optimizer states) after `steps`.
struct LocalRef {
  std::map<std::string, Tensor> params;
  std::map<std::string, Tensor> exp_avg;
  std::map<std::string, Tensor> exp_avg_sq;
};

LocalRef LocalAdam(int world, int steps, uint64_t seed = 42) {
  auto model = MakeModel(seed);
  std::vector<Tensor> params;
  std::vector<std::string> names;
  for (auto& [name, slot] : model->NamedParameters()) {
    params.push_back(*slot);
    names.push_back(name);
  }
  optim::Adam adam(params, {.lr = 1e-2f});
  for (int s = 0; s < steps; ++s) {
    adam.ZeroGrad();
    for (int r = 0; r < world; ++r) {
      Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / world));
    }
    adam.Step();
  }
  LocalRef ref;
  for (size_t i = 0; i < params.size(); ++i) {
    ref.params[names[i]] = params[i].Clone();
    auto sv = adam.GetState(i);
    if (sv.initialized) {
      ref.exp_avg[names[i]] = sv.exp_avg.Clone();
      ref.exp_avg_sq[names[i]] = sv.exp_avg_sq.Clone();
    }
  }
  return ref;
}

// --------------------------------------------------- functional fully_shard

TEST(FullyShardTest, PreservesModuleStructureAndFqns) {
  comm::DeviceMesh mesh(2, 2);
  RunOnRanks(2, [&](int r) {
    auto model = MakeModel(1);
    const auto names_before = model->NamedParameters();
    auto state = FullyShard(model, mesh, r, BlockOpts());
    // Structure and names unchanged (the fully_shard selling point, Sec 4).
    const auto names_after = model->NamedParameters();
    ASSERT_EQ(names_before.size(), names_after.size());
    for (size_t i = 0; i < names_before.size(); ++i) {
      ASSERT_EQ(names_before[i].first, names_after[i].first);
    }
    ASSERT_EQ(state->num_units(), 3);
  });
}

TEST(FullyShardTest, TrainingMatchesLocalReference) {
  const int w = 4;
  auto ref = LocalAdam(w, 3);
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    auto state = FullyShard(model, mesh, r, BlockOpts());
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 3; ++s) {
      adam.ZeroGrad();
      // The user calls their OWN module — no wrapper in sight.
      Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      adam.Step();
    }
    for (auto& [fqn, value] : state->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.params.at(fqn), 2e-4f, 1e-5f)) << fqn;
    }
  });
}

TEST(FullyShardTest, WrapperAndFunctionalProduceSameEvents) {
  comm::DeviceMesh mesh(2, 2);
  auto render = [](const std::vector<obs::TraceEvent>& events) {
    std::vector<std::string> out;
    out.reserve(events.size());
    for (const auto& e : events) out.push_back(obs::RenderEvent(e));
    return out;
  };
  std::vector<std::string> wrapper_events, functional_events;
  RunOnRanks(2, [&](int r) {
    auto m1 = MakeModel(3);
    FullyShardedDataParallel fsdp(m1, mesh, r, BlockOpts());
    Tensor loss = ops::CrossEntropy(fsdp.Forward(RankTokens(r)),
                                    RankTargets(r));
    autograd::RunBackward(loss);
    if (r == 0) wrapper_events = render(fsdp.trace_events());
  });
  RunOnRanks(2, [&](int r) {
    auto m2 = MakeModel(3);
    auto state = FullyShard(m2, mesh, r, BlockOpts());
    Tensor loss = ops::CrossEntropy((*m2)(RankTokens(r)), RankTargets(r));
    autograd::RunBackward(loss);
    if (r == 0) functional_events = render(state->trace_events());
  });
  ASSERT_EQ(wrapper_events, functional_events);
}

// ------------------------------------------------- optimizer state dicts

TEST(OptimStateTest, GatheredStateMatchesLocalAdam) {
  const int w = 4;
  auto ref = LocalAdam(w, 3);
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(42);
    auto state = FullyShard(model, mesh, r, BlockOpts());
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 3; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      adam.Step();
    }
    auto full = core::GatherFullOptimState(*state, adam);
    ASSERT_EQ(full.size(), ref.exp_avg.size());
    for (const auto& e : full) {
      ASSERT_TRUE(e.exp_avg.AllClose(ref.exp_avg.at(e.fqn), 2e-4f, 1e-6f))
          << "exp_avg " << e.fqn;
      ASSERT_TRUE(
          e.exp_avg_sq.AllClose(ref.exp_avg_sq.at(e.fqn), 2e-4f, 1e-7f))
          << "exp_avg_sq " << e.fqn;
      ASSERT_EQ(e.step, 3);
      ASSERT_EQ(e.exp_avg.shape(), ref.exp_avg.at(e.fqn).shape());
    }
  });
}

TEST(OptimStateTest, SaveLoadRoundTrip) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    auto model = MakeModel(5);
    auto state = FullyShard(model, mesh, r, BlockOpts());
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    for (int s = 0; s < 2; ++s) {
      adam.ZeroGrad();
      Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                      RankTargets(r));
      autograd::RunBackward(loss);
      adam.Step();
    }
    auto saved = core::GatherFullOptimState(*state, adam);
    // Wipe the optimizer and restore.
    optim::Adam fresh(state->Parameters(), {.lr = 1e-2f});
    core::LoadFullOptimState(*state, fresh, saved);
    auto restored = core::GatherFullOptimState(*state, fresh);
    ASSERT_EQ(saved.size(), restored.size());
    for (size_t i = 0; i < saved.size(); ++i) {
      ASSERT_EQ(saved[i].fqn, restored[i].fqn);
      ASSERT_TRUE(restored[i].exp_avg.AllClose(saved[i].exp_avg, 0, 0));
      ASSERT_TRUE(restored[i].exp_avg_sq.AllClose(saved[i].exp_avg_sq, 0, 0));
      ASSERT_EQ(restored[i].step, saved[i].step);
    }
  });
}

TEST(OptimStateTest, CheckpointReshardsAcrossWorldSizesAndWrapping) {
  // Train at W=4 with block wrapping, checkpoint (params + optimizer),
  // resume at W=2 with NO wrapping, train more — must match a local run.
  const int kStepsA = 2, kStepsB = 2;
  auto ref = LocalAdam(/*world=*/4, kStepsA + kStepsB);

  std::vector<std::pair<std::string, Tensor>> param_ckpt;
  std::vector<core::FullOptimEntry> optim_ckpt;
  {
    comm::DeviceMesh mesh(4, 4);
    std::mutex mu;
    RunOnRanks(4, [&](int r) {
      auto model = MakeModel(42);
      auto state = FullyShard(model, mesh, r, BlockOpts());
      optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
      for (int s = 0; s < kStepsA; ++s) {
        adam.ZeroGrad();
        Tensor loss = ops::CrossEntropy((*model)(RankTokens(r)),
                                        RankTargets(r));
        autograd::RunBackward(loss);
        adam.Step();
      }
      auto params = state->FullStateDict();
      auto opt = core::GatherFullOptimState(*state, adam);
      if (r == 0) {
        std::lock_guard<std::mutex> lock(mu);
        param_ckpt = std::move(params);
        optim_ckpt = std::move(opt);
      }
    });
  }

  comm::DeviceMesh mesh2(2, 2);
  RunOnRanks(2, [&](int r) {
    auto model = MakeModel(9999);  // deliberately different init
    auto state = FullyShard(model, mesh2, r, {});  // single [root] unit
    optim::Adam adam(state->Parameters(), {.lr = 1e-2f});
    state->LoadFullStateDict(param_ckpt);
    core::LoadFullOptimState(*state, adam, optim_ckpt);
    // Resume: ranks 0/1 each process two of the original four batches so
    // the global batch matches the reference (mean of 4 rank losses).
    for (int s = kStepsA; s < kStepsA + kStepsB; ++s) {
      adam.ZeroGrad();
      for (int half = 0; half < 2; ++half) {
        Tensor loss = ops::CrossEntropy(
            (*model)(RankTokens(r * 2 + half)), RankTargets(r * 2 + half));
        autograd::RunBackward(ops::ScalarMul(loss, 0.5f));
      }
      adam.Step();
    }
    // Loose tolerance: the resumed run reduces in a different float
    // association ((l0+l1)/2 + (l2+l3)/2 vs the sequential local sum), and
    // Adam amplifies near-zero cancellation — the Sec 7.2.1 caveat again.
    for (auto& [fqn, value] : state->FullStateDict()) {
      ASSERT_TRUE(value.AllClose(ref.params.at(fqn), 5e-2f, 3e-3f))
          << "rank " << r << " " << fqn;
    }
  });
}

// ----------------------------------------------------- dynamic graphs

/// A model that skips its second block on every other iteration — a dynamic
/// graph whose pre-forward order changes across iterations (Sec 3.3.2).
struct DynamicModel : nn::Module {
  std::shared_ptr<nn::Linear> in, out;
  std::shared_ptr<nn::MLP> block_a, block_b;
  int iteration = 0;

  explicit DynamicModel(nn::InitCtx& ctx) {
    in = std::make_shared<nn::Linear>(6, 8, true, ctx);
    block_a = std::make_shared<nn::MLP>(8, 16, ctx);
    block_b = std::make_shared<nn::MLP>(8, 16, ctx);
    out = std::make_shared<nn::Linear>(8, 4, true, ctx);
    RegisterModule("in", in);
    RegisterModule("block_a", block_a);
    RegisterModule("block_b", block_b);
    RegisterModule("out", out);
  }
  Tensor Forward(const Tensor& x) override {
    Tensor h = (*in)(x);
    if (iteration % 2 == 0) {
      h = ops::Add(h, (*block_a)(h));
      h = ops::Add(h, (*block_b)(h));
    } else {
      h = ops::Add(h, (*block_b)(h));  // reversed, block_a skipped
    }
    ++iteration;
    return (*out)(h);
  }
  std::string TypeName() const override { return "DynamicModel"; }
};

TEST(DynamicGraphTest, OrderChangeDetectedAndTrainingStaysCorrect) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 17);
    auto model = std::make_shared<DynamicModel>(ctx);
    FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP"});
    auto state = FullyShard(model, mesh, r, opts);
    Rng rng(r + 1, 0);

    for (int iter = 0; iter < 4; ++iter) {
      Tensor x = Tensor::Randn({3, 6}, rng);
      Tensor y = (*model)(x);
      Tensor loss = ops::Mean(ops::Mul(y, y));
      autograd::RunBackward(loss);
      for (int u = 0; u < state->num_units(); ++u) {
        Tensor g = state->unit_handle(u).sharded_param().grad();
        if (g.defined()) {
          ASSERT_FALSE(g.HasNonFinite())
              << "iter " << iter << " unit " << state->unit_name(u);
        }
        state->unit_handle(u).sharded_param().zero_grad();
      }
    }
    // The alternating structure must have been detected at least once.
    ASSERT_TRUE(state->order_changed() ||
                std::count(state->events().begin(), state->events().end(),
                           std::string("ORDER_CHANGED")) > 0);
  });
}

TEST(DynamicGraphTest, SkippedUnitGetsNoGradient) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 18);
    auto model = std::make_shared<DynamicModel>(ctx);
    model->iteration = 1;  // start on the skip-block_a branch
    FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"MLP"});
    auto state = FullyShard(model, mesh, r, opts);
    Rng rng(r + 3, 0);
    Tensor loss = ops::Mean((*model)(Tensor::Randn({2, 6}, rng)));
    autograd::RunBackward(loss);
    int with_grad = 0, without_grad = 0;
    for (int u = 0; u < state->num_units(); ++u) {
      if (state->unit_handle(u).sharded_param().grad().defined()) {
        ++with_grad;
      } else {
        ASSERT_NE(state->unit_name(u).find("block_a"), std::string::npos);
        ++without_grad;
      }
    }
    ASSERT_EQ(without_grad, 1);  // exactly block_a skipped
    ASSERT_GE(with_grad, 2);
  });
}

}  // namespace
}  // namespace fsdp
