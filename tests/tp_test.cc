// Tensor parallelism and 2D (TP x FSDP) composition tests (paper Sec 7.1.2).
#include <gtest/gtest.h>

#include <map>

#include "autograd/engine.h"
#include "comm/functional.h"
#include "core/fsdp.h"
#include "nn/tensor_parallel.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::ExpectAllClose;

// ------------------------------------------- differentiable collectives

TEST(FunctionalCollectives, AllReduceSumForwardAndBackward) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor x = Tensor::Full({3}, static_cast<float>(r + 1));
    x.set_requires_grad(true);
    Tensor y = comm::AllReduceSum(x, pg);
    ASSERT_FLOAT_EQ(y.data()[0], 10.f);  // 1+2+3+4
    autograd::RunBackward(ops::Sum(y));
    // d(sum of allreduce)/dx = ones on every rank.
    ASSERT_TRUE(x.grad().AllClose(Tensor::Ones({3}), 0, 0));
  });
}

TEST(FunctionalCollectives, AllGatherColsRoundTrip) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    // rank 0 holds cols {0,1}, rank 1 holds cols {2,3} of a (2 x 4) matrix.
    Tensor local = Tensor::FromVector(
        r == 0 ? std::vector<float>{0, 1, 4, 5}
               : std::vector<float>{2, 3, 6, 7},
        {2, 2});
    local.set_requires_grad(true);
    Tensor full = comm::AllGatherCols(local, pg);
    ExpectAllClose(full, Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7}, {2, 4}),
                   0, 0);
    // Backward: weight the gathered output by column index.
    Tensor weights = Tensor::FromVector({1, 2, 3, 4, 1, 2, 3, 4}, {2, 4});
    autograd::RunBackward(ops::Sum(ops::Mul(full, weights)));
    Tensor expect = r == 0 ? Tensor::FromVector({1, 2, 1, 2}, {2, 2})
                           : Tensor::FromVector({3, 4, 3, 4}, {2, 2});
    ASSERT_TRUE(local.grad().AllClose(expect, 0, 0));
  });
}

TEST(FunctionalCollectives, ScatterColsInvertsGather) {
  const int w = 2;
  auto comm = std::make_shared<comm::Communicator>(w);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor full = Tensor::FromVector({0, 1, 2, 3, 4, 5, 6, 7}, {2, 4});
    full.set_requires_grad(true);
    Tensor mine = comm::ScatterCols(full, pg);
    Tensor back = comm::AllGatherCols(mine, pg);
    ASSERT_TRUE(back.AllClose(full, 0, 0));
    autograd::RunBackward(ops::Sum(back));
    ASSERT_TRUE(full.grad().AllClose(Tensor::Ones({2, 4}), 0, 0));
  });
}

// ---------------------------------------------------- TP layer equivalence

/// Builds a local reference MLP and a TP MLP whose slices are copied from
/// it, so outputs/gradients must match bitwise-ish.
struct TpSetup {
  Tensor w1, b1, w2, b2;  // reference (hidden x in), (hidden), (out x hidden), (out)
};

TpSetup MakeRef(int64_t in, int64_t hidden, int64_t out, uint64_t seed) {
  Rng rng(seed, 0);
  TpSetup s;
  s.w1 = Tensor::Randn({hidden, in}, rng, 0.f, 0.3f);
  s.b1 = Tensor::Randn({hidden}, rng, 0.f, 0.3f);
  s.w2 = Tensor::Randn({out, hidden}, rng, 0.f, 0.3f);
  s.b2 = Tensor::Randn({out}, rng, 0.f, 0.3f);
  return s;
}

Tensor RefForward(const TpSetup& s, const Tensor& x) {
  return ops::Linear(ops::Gelu(ops::Linear(x, s.w1, s.b1)), s.w2, s.b2);
}

/// Copies the reference slices into the TP modules for TP rank `tp`.
void LoadSlices(nn::TensorParallelMLP& mlp, const TpSetup& s, int tp,
                int tp_degree) {
  NoGradGuard no_grad;
  const int64_t hidden = s.w1.size(0);
  const int64_t local_h = hidden / tp_degree;
  // Column-parallel fc1: rows [tp*local_h, (tp+1)*local_h) of w1/b1.
  mlp.fc1().weight().CopyFrom_(
      s.w1.SliceView(tp * local_h * s.w1.size(1), {local_h, s.w1.size(1)}));
  mlp.fc1().bias().CopyFrom_(s.b1.SliceView(tp * local_h, {local_h}));
  // Row-parallel fc2: columns [tp*local_h, ...) of w2 — strided copy.
  Tensor w2_local = mlp.fc2().weight();
  for (int64_t r = 0; r < s.w2.size(0); ++r) {
    for (int64_t c = 0; c < local_h; ++c) {
      w2_local.set_at({r, c}, s.w2.at({r, tp * local_h + c}));
    }
  }
  mlp.fc2().bias().CopyFrom_(s.b2);
}

TEST(TensorParallelTest, MlpForwardAndGradientsMatchLocal) {
  const int tp_degree = 2;
  const int64_t dim = 6, hidden = 8;
  auto comm = std::make_shared<comm::Communicator>(tp_degree);
  TpSetup ref = MakeRef(dim, hidden, dim, 21);
  Rng rng(5, 0);
  Tensor x = Tensor::Randn({4, dim}, rng);

  // Local reference forward/backward.
  TpSetup local = ref;
  local.w1 = ref.w1.Clone();
  local.b1 = ref.b1.Clone();
  local.w2 = ref.w2.Clone();
  local.b2 = ref.b2.Clone();
  for (Tensor* t : {&local.w1, &local.b1, &local.w2, &local.b2}) {
    t->set_requires_grad(true);
  }
  Tensor ref_out = RefForward(local, x);
  autograd::RunBackward(ops::Sum(ops::Mul(ref_out, ref_out)));

  RunOnRanks(tp_degree, [&](int tp) {
    nn::InitCtx ctx(Device::kCpu, 77);
    nn::TensorParallelMLP mlp(dim, hidden, comm::ProcessGroup(comm, tp),
                              ctx);
    LoadSlices(mlp, ref, tp, tp_degree);
    Tensor out = mlp(x);
    ASSERT_TRUE(out.AllClose(ref_out, 1e-4f, 1e-5f)) << "tp rank " << tp;
    autograd::RunBackward(ops::Sum(ops::Mul(out, out)));
    // fc1 grads: this rank's row block of the reference w1 grad.
    const int64_t local_h = hidden / tp_degree;
    Tensor gw1 = mlp.fc1().weight().grad();
    ASSERT_TRUE(gw1.AllClose(
        local.w1.grad().SliceView(tp * local_h * dim, {local_h, dim}),
        1e-3f, 1e-4f));
    Tensor gb2 = mlp.fc2().bias().grad();
    ASSERT_TRUE(gb2.AllClose(local.b2.grad(), 1e-3f, 1e-4f));
  });
}

// ------------------------------------------------------- 2D: TP x FSDP

/// 4 ranks as a 2x2 mesh: TP pairs {0,1},{2,3}; data-parallel pairs {0,2},
/// {1,3}. FSDP shards each TP slice over the DP dimension; gradients reduce
/// over DP; activations communicate over TP — the Sec 7.1.2 arrangement.
TEST(TwoDParallelTest, TpTimesFsdpMatchesLocal) {
  const int tp_degree = 2, dp_degree = 2;
  const int64_t dim = 6, hidden = 8;
  TpSetup ref = MakeRef(dim, hidden, dim, 31);

  auto batch_for = [&](int dp) {
    Rng rng(100 + dp, 0);
    return Tensor::Randn({3, dim}, rng);
  };

  // Local reference: mean-over-DP loss, one SGD step.
  TpSetup local = ref;
  local.w1 = ref.w1.Clone();
  local.b1 = ref.b1.Clone();
  local.w2 = ref.w2.Clone();
  local.b2 = ref.b2.Clone();
  std::vector<Tensor> local_params = {local.w1, local.b1, local.w2, local.b2};
  for (Tensor& t : local_params) t.set_requires_grad(true);
  optim::SGD ref_sgd(local_params, 0.1f);
  for (int dp = 0; dp < dp_degree; ++dp) {
    Tensor out = RefForward(local, batch_for(dp));
    autograd::RunBackward(
        ops::ScalarMul(ops::Mean(ops::Mul(out, out)), 1.f / dp_degree));
  }
  ref_sgd.Step();

  // TP communicators: one per TP pair. FSDP meshes: one per TP index (its
  // ranks are the DP pair holding the same slice).
  std::vector<std::shared_ptr<comm::Communicator>> tp_comms = {
      std::make_shared<comm::Communicator>(tp_degree),
      std::make_shared<comm::Communicator>(tp_degree)};
  std::vector<std::unique_ptr<comm::DeviceMesh>> dp_meshes;
  dp_meshes.push_back(std::make_unique<comm::DeviceMesh>(dp_degree,
                                                         dp_degree));
  dp_meshes.push_back(std::make_unique<comm::DeviceMesh>(dp_degree,
                                                         dp_degree));

  RunOnRanks(tp_degree * dp_degree, [&](int rank) {
    const int tp = rank % tp_degree;  // position within the TP pair
    const int dp = rank / tp_degree;  // which data-parallel replica
    nn::InitCtx ctx(Device::kCpu, 55);
    auto mlp = std::make_shared<nn::TensorParallelMLP>(
        dim, hidden, comm::ProcessGroup(tp_comms[dp], tp), ctx);
    LoadSlices(*mlp, ref, tp, tp_degree);

    core::FsdpOptions opts;
    opts.sync_module_states = false;  // slices differ per TP rank by design
    auto state = core::FullyShard(mlp, *dp_meshes[tp], dp, opts);
    optim::SGD sgd(state->Parameters(), 0.1f);
    Tensor out = (*mlp)(batch_for(dp));
    autograd::RunBackward(ops::Mean(ops::Mul(out, out)));
    sgd.Step();

    // Compare this TP slice's full (DP-gathered) parameters against the
    // locally-trained reference slices.
    const int64_t local_h = hidden / tp_degree;
    std::map<std::string, Tensor> full;
    for (auto& [fqn, value] : state->FullStateDict()) full[fqn] = value;
    ASSERT_TRUE(full.at("fc1.weight")
                    .AllClose(local.w1.SliceView(tp * local_h * dim,
                                                 {local_h, dim}),
                              1e-4f, 1e-5f))
        << "rank " << rank;
    ASSERT_TRUE(full.at("fc2.bias").AllClose(local.b2, 1e-4f, 1e-5f))
        << "rank " << rank;
  });
}

}  // namespace
}  // namespace fsdp
