// Optimizer and gradient-scaler tests.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/engine.h"
#include "autograd/ops.h"
#include "common/threading.h"
#include "optim/grad_scaler.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::ExpectAllClose;

TEST(SgdTest, PlainStep) {
  Tensor p = Tensor::FromVector({1, 2}, {2});
  p.set_requires_grad(true);
  p.set_grad(Tensor::FromVector({10, -10}, {2}));
  optim::SGD sgd({p}, 0.1f);
  sgd.Step();
  ExpectAllClose(p, Tensor::FromVector({0, 3}, {2}), 1e-6f, 1e-6f);
  EXPECT_EQ(sgd.StateNumel(), 0);
}

TEST(SgdTest, MomentumAccumulates) {
  Tensor p = Tensor::Zeros({1});
  p.set_requires_grad(true);
  optim::SGD sgd({p}, 1.f, 0.9f);
  // Two steps with grad 1: v1=1, p=-1; v2=1.9, p=-2.9.
  p.set_grad(Tensor::Ones({1}));
  sgd.Step();
  EXPECT_FLOAT_EQ(p.item(), -1.f);
  sgd.Step();
  EXPECT_FLOAT_EQ(p.item(), -2.9f);
  EXPECT_EQ(sgd.StateNumel(), 1);
}

TEST(SgdTest, SkipsParamsWithoutGrad) {
  Tensor p = Tensor::Ones({2});
  p.set_requires_grad(true);
  optim::SGD sgd({p}, 0.5f);
  sgd.Step();  // no grad
  ExpectAllClose(p, Tensor::Ones({2}), 0, 0);
}

TEST(AdamTest, MatchesHandComputedFirstSteps) {
  // Single scalar, constant grad 1: with bias correction the first step is
  // exactly -lr (m_hat = 1, v_hat = 1).
  Tensor p = Tensor::Zeros({1});
  p.set_requires_grad(true);
  optim::AdamOptions o;
  o.lr = 0.1f;
  o.eps = 0.f;
  optim::Adam adam({p}, o);
  p.set_grad(Tensor::Ones({1}));
  adam.Step();
  EXPECT_NEAR(p.item(), -0.1f, 1e-6f);
  adam.Step();
  EXPECT_NEAR(p.item(), -0.2f, 1e-5f);  // still ~ -lr per step with g == 1
  EXPECT_EQ(adam.StateNumel(), 2);      // m and v
}

TEST(AdamTest, WeightDecayVariants) {
  // L2 (coupled): effective grad = g + wd*p. AdamW: p *= (1 - lr*wd) first.
  Tensor p1 = Tensor::Ones({1});
  p1.set_requires_grad(true);
  Tensor p2 = Tensor::Ones({1});
  p2.set_requires_grad(true);
  optim::AdamOptions l2;
  l2.lr = 0.f;  // isolate the decay term
  l2.weight_decay = 0.5f;
  optim::AdamOptions aw = l2;
  aw.decoupled_weight_decay = true;
  optim::Adam adam_l2({p1}, l2);
  optim::Adam adam_w({p2}, aw);
  p1.set_grad(Tensor::Zeros({1}));
  p2.set_grad(Tensor::Zeros({1}));
  adam_l2.Step();
  adam_w.Step();
  EXPECT_FLOAT_EQ(p1.item(), 1.f);  // lr=0: no movement for L2 form
  EXPECT_FLOAT_EQ(p2.item(), 1.f);  // lr=0: (1 - 0) multiplier
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // min (p - 3)^2.
  Tensor p = Tensor::Zeros({1});
  p.set_requires_grad(true);
  optim::Adam adam({p}, {.lr = 0.1f});
  Tensor target = Tensor::Full({1}, 3.f);
  for (int i = 0; i < 300; ++i) {
    adam.ZeroGrad();
    Tensor loss = ops::MseLoss(p, target);
    autograd::RunBackward(loss);
    adam.Step();
  }
  EXPECT_NEAR(p.item(), 3.f, 0.05f);
}

TEST(GradScalerTest, ScalesLossAndUnscalesGrads) {
  Tensor p = Tensor::Ones({2});
  p.set_requires_grad(true);
  optim::GradScaler scaler({.init_scale = 8.f});
  Tensor loss = ops::Sum(p);
  Tensor scaled = scaler.ScaleLoss(loss);
  EXPECT_FLOAT_EQ(scaled.item(), 16.f);
  autograd::RunBackward(scaled);
  ExpectAllClose(p.grad(), Tensor::Full({2}, 8.f), 0, 0);
  EXPECT_TRUE(scaler.Unscale({p}));
  ExpectAllClose(p.grad(), Tensor::Ones({2}), 0, 0);
}

TEST(GradScalerTest, SkipsStepOnOverflowAndBacksOff) {
  Tensor p = Tensor::Ones({1});
  p.set_requires_grad(true);
  optim::GradScaler scaler({.init_scale = 4.f});
  optim::SGD sgd({p}, 1.f);
  Tensor inf_grad = Tensor::Full({1}, std::numeric_limits<float>::infinity());
  p.set_grad(inf_grad);
  EXPECT_FALSE(scaler.Step(sgd));
  EXPECT_TRUE(scaler.last_step_skipped());
  EXPECT_FLOAT_EQ(p.item(), 1.f);       // untouched
  EXPECT_FLOAT_EQ(scaler.scale(), 2.f);  // backoff 0.5
}

TEST(GradScalerTest, GrowsAfterStreak) {
  Tensor p = Tensor::Ones({1});
  p.set_requires_grad(true);
  optim::GradScaler scaler({.init_scale = 2.f, .growth_interval = 3});
  optim::SGD sgd({p}, 0.f);
  for (int i = 0; i < 3; ++i) {
    p.set_grad(Tensor::Ones({1}));
    EXPECT_TRUE(scaler.Step(sgd));
  }
  EXPECT_FLOAT_EQ(scaler.scale(), 4.f);
}

TEST(ShardedGradScalerTest, AllRanksAgreeOnSkip) {
  // Only rank 1's shard overflows; every rank must still skip (Sec 4.4).
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  std::vector<int> stepped(w, -1);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor p = Tensor::Ones({2});
    p.set_requires_grad(true);
    optim::ShardedGradScaler scaler(pg, {.init_scale = 2.f});
    optim::SGD sgd({p}, 1.f);
    Tensor g = Tensor::Ones({2});
    if (r == 1) g.set_at({0}, std::nanf(""));
    p.set_grad(g);
    stepped[r] = scaler.Step(sgd) ? 1 : 0;
  });
  for (int r = 0; r < w; ++r) EXPECT_EQ(stepped[r], 0) << "rank " << r;
}

TEST(ShardedGradScalerTest, FiniteShardsStepEverywhere) {
  const int w = 4;
  auto comm = std::make_shared<comm::Communicator>(w);
  std::vector<int> stepped(w, -1);
  RunOnRanks(w, [&](int r) {
    comm::ProcessGroup pg(comm, r);
    Tensor p = Tensor::Ones({2});
    p.set_requires_grad(true);
    optim::ShardedGradScaler scaler(pg, {.init_scale = 2.f});
    optim::SGD sgd({p}, 1.f);
    p.set_grad(Tensor::Full({2}, 2.f));  // scaled grad
    stepped[r] = scaler.Step(sgd) ? 1 : 0;
    // After unscale: grad = 1; step: p = 0.
    if (stepped[r]) {
      for (int64_t i = 0; i < 2; ++i) {
        EXPECT_FLOAT_EQ(p.data()[i], 0.f);
      }
    }
  });
  for (int r = 0; r < w; ++r) EXPECT_EQ(stepped[r], 1);
}

TEST(GradScalerTest, Fp16TrainingWithScalerAvoidsOverflow) {
  // A contrived FP16 pipeline where the *scaled* backward overflows FP16 on
  // the first iteration, the scaler backs off, and training proceeds.
  Tensor p = Tensor::Full({1}, 0.5f);
  p.set_requires_grad(true);
  optim::GradScaler scaler({.init_scale = 65536.f * 4.f});
  optim::SGD sgd({p}, 0.01f);
  int applied = 0;
  for (int iter = 0; iter < 8; ++iter) {
    sgd.ZeroGrad();
    Tensor loss = ops::Sum(ops::Mul(p, p));
    Tensor scaled = scaler.ScaleLoss(loss);
    autograd::RunBackward(scaled);
    // Emulate FP16 gradient storage: quantize the grad through FP16.
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      g.data()[i] = QuantizeF16(g.data()[i]);
    }
    if (scaler.Step(sgd)) ++applied;
  }
  EXPECT_GE(applied, 4);          // recovered after backoffs
  EXPECT_LT(scaler.scale(), 65536.f * 4.f);
}

}  // namespace
}  // namespace fsdp
