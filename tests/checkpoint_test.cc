// Activation checkpointing tests: gradient equivalence, memory savings,
// composition with FSDP (re-AllGather on recompute), and the helpers.
#include <gtest/gtest.h>

#include <map>

#include "autograd/engine.h"
#include "core/fsdp.h"
#include "core/fsdp_utils.h"
#include "nn/checkpoint.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tests/test_util.h"

namespace fsdp {
namespace {

using fsdp::testing::ExpectAllClose;

nn::ModulePtr MlpStack(uint64_t seed, int64_t dim, int blocks,
                       bool checkpoint) {
  nn::InitCtx ctx(Device::kCpu, seed);
  auto seq = std::make_shared<nn::Sequential>();
  for (int b = 0; b < blocks; ++b) {
    nn::ModulePtr mlp = std::make_shared<nn::MLP>(dim, 2 * dim, ctx);
    if (checkpoint) mlp = std::make_shared<nn::Checkpoint>(mlp);
    seq->Append(mlp);
  }
  return seq;
}

TEST(CheckpointTest, GradientsMatchNonCheckpointed) {
  const int64_t dim = 8;
  Rng rng(1, 0);
  Tensor x = Tensor::Randn({4, dim}, rng);
  x.set_requires_grad(true);
  Tensor x2 = x.Clone();
  x2.set_requires_grad(true);

  auto plain = MlpStack(9, dim, 3, false);
  auto ckpt = MlpStack(9, dim, 3, true);

  Tensor y1 = (*plain)(x);
  autograd::RunBackward(ops::Sum(ops::Mul(y1, y1)));
  Tensor y2 = (*ckpt)(x2);
  ASSERT_TRUE(y2.AllClose(y1, 1e-5f, 1e-6f));
  autograd::RunBackward(ops::Sum(ops::Mul(y2, y2)));

  // Input gradients agree.
  ExpectAllClose(x2.grad(), x.grad(), 1e-4f, 1e-6f);
  // Parameter gradients agree (same registration order).
  auto p1 = plain->NamedParameters();
  auto p2 = ckpt->NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_TRUE(p2[i].second->grad().defined()) << p2[i].first;
    ASSERT_TRUE(
        p2[i].second->grad().AllClose(p1[i].second->grad(), 1e-4f, 1e-6f))
        << p2[i].first;
  }
}

TEST(CheckpointTest, ForwardKeepsOnlyBlockInputsAlive) {
  // After a checkpointed forward, live bytes must be well below the
  // non-checkpointed forward's (whose graph pins every intermediate).
  const int64_t dim = 64;
  Rng rng(2, 0);
  Tensor x = Tensor::Randn({32, dim}, rng);

  auto measure = [&](bool checkpoint) {
    auto model = MlpStack(3, dim, 6, checkpoint);
    const int64_t before = Storage::live_bytes();
    Tensor y = (*model)(x);
    const int64_t held = Storage::live_bytes() - before;
    // Keep the graph alive until measured.
    (void)y;
    return held;
  };
  const int64_t with_graph = measure(false);
  const int64_t with_ckpt = measure(true);
  EXPECT_LT(with_ckpt, with_graph / 3)
      << "ckpt " << with_ckpt << " vs full " << with_graph;
}

TEST(CheckpointTest, MultipleBackwardsThroughSameCheckpoint) {
  // Two losses from two forwards; each backward recomputes independently.
  const int64_t dim = 6;
  auto model = MlpStack(5, dim, 2, true);
  Rng rng(4, 0);
  Tensor a = Tensor::Randn({2, dim}, rng);
  Tensor b = Tensor::Randn({2, dim}, rng);
  Tensor la = ops::Sum((*model)(a));
  Tensor lb = ops::Sum((*model)(b));
  autograd::RunBackward(la);
  autograd::RunBackward(lb);
  // Reference: accumulate both on a plain model.
  auto plain = MlpStack(5, dim, 2, false);
  autograd::RunBackward(ops::Sum((*plain)(a)));
  autograd::RunBackward(ops::Sum((*plain)(b)));
  auto p1 = plain->NamedParameters();
  auto p2 = model->NamedParameters();
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_TRUE(
        p2[i].second->grad().AllClose(p1[i].second->grad(), 1e-4f, 1e-6f));
  }
}

TEST(CheckpointTest, ApplyActivationCheckpointingWrapsSequentialChildren) {
  auto model = MlpStack(7, 8, 3, false);
  const int wrapped = nn::ApplyActivationCheckpointing(*model, {"MLP"});
  EXPECT_EQ(wrapped, 3);
  int ckpt_children = 0;
  for (auto& [name, child] : model->Children()) {
    if (child->TypeName() == "Checkpoint") ++ckpt_children;
  }
  EXPECT_EQ(ckpt_children, 3);
  // Still trains like the eager variant.
  Rng rng(6, 0);
  Tensor x = Tensor::Randn({2, 8}, rng);
  autograd::RunBackward(ops::Sum((*model)(x)));
  for (auto& [name, slot] : model->NamedParameters()) {
    ASSERT_TRUE(slot->grad().defined()) << name;
  }
}

TEST(CheckpointTest, TransformerConfigFlagMatchesEager) {
  nn::TransformerConfig cfg;
  cfg.vocab_size = 17;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  Tensor tokens = ops::IndexTensor({1, 2, 3, 4}, {1, 4});
  Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});

  nn::InitCtx ctx1(Device::kCpu, 31);
  nn::TransformerModel plain(cfg, ctx1);
  autograd::RunBackward(ops::CrossEntropy(plain(tokens), targets));

  cfg.checkpoint_blocks = true;
  nn::InitCtx ctx2(Device::kCpu, 31);
  nn::TransformerModel ckpt(cfg, ctx2);
  autograd::RunBackward(ops::CrossEntropy(ckpt(tokens), targets));

  auto p1 = plain.NamedParameters();
  auto p2 = ckpt.NamedParameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_TRUE(
        p2[i].second->grad().AllClose(p1[i].second->grad(), 1e-4f, 1e-6f))
        << p2[i].first;
  }
}

TEST(CheckpointFsdpTest, TrainingMatchesLocalAndReAllGathers) {
  // FSDP + checkpointing (the paper's Sec 5.4 configuration): gradients must
  // match local training, and the event log must show the unit being
  // re-AllGathered for the recompute.
  const int w = 2;
  nn::TransformerConfig cfg;
  cfg.vocab_size = 13;
  cfg.max_seq = 4;
  cfg.dim = 8;
  cfg.num_heads = 2;
  cfg.num_layers = 2;
  cfg.checkpoint_blocks = true;
  Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
  auto tokens_for = [](int r) {
    return ops::IndexTensor({(r * 3 + 1) % 13, (r * 5 + 2) % 13,
                             (r + 3) % 13, (r + 4) % 13},
                            {1, 4});
  };

  // Local reference (also checkpointed — values identical either way).
  std::map<std::string, Tensor> ref;
  {
    nn::InitCtx ctx(Device::kCpu, 42);
    nn::TransformerModel model(cfg, ctx);
    for (int r = 0; r < w; ++r) {
      Tensor loss = ops::CrossEntropy(model(tokens_for(r)), targets);
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / w));
    }
    for (auto& [n, slot] : model.NamedParameters()) ref[n] = slot->grad();
  }

  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 42);
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    core::FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    auto state = core::FullyShard(model, mesh, r, opts);
    Tensor loss = ops::CrossEntropy((*model)(tokens_for(r)), targets);
    autograd::RunBackward(loss);
    for (int u = 0; u < state->num_units(); ++u) {
      for (auto& [fqn, grad] : state->unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.defined()) << fqn;
        ASSERT_TRUE(grad.AllClose(ref.at(fqn), 1e-4f, 1e-5f))
            << "rank " << r << " " << fqn;
      }
    }
    // Each checkpointed block is AllGathered twice: once in forward, once
    // for the backward recompute.
    int ag_block0 = 0;
    for (const auto& e : state->events()) {
      if (e == "AG:blocks.0.inner") ++ag_block0;
    }
    ASSERT_EQ(ag_block0, 2) << "expected forward + recompute AllGathers";
  });
}

// ---------------------------------------------------------- grad clipping

TEST(ClipGradNormTest, MatchesLocalGlobalNorm) {
  const int w = 4;
  // Local reference: global norm over all grads, clip to 0.05.
  float ref_norm = 0;
  std::map<std::string, Tensor> ref_clipped;
  {
    nn::InitCtx ctx(Device::kCpu, 42);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 13;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    nn::TransformerModel model(cfg, ctx);
    for (int r = 0; r < w; ++r) {
      Tensor tokens = ops::IndexTensor(
          {(r * 3 + 1) % 13, (r * 5 + 2) % 13, (r + 3) % 13, (r + 4) % 13},
          {1, 4});
      Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
      Tensor loss = ops::CrossEntropy(model(tokens), targets);
      autograd::RunBackward(ops::ScalarMul(loss, 1.f / w));
    }
    double sq = 0;
    for (auto& [n, slot] : model.NamedParameters()) {
      Tensor g = slot->grad();
      for (int64_t i = 0; i < g.numel(); ++i) {
        sq += static_cast<double>(g.data()[i]) * g.data()[i];
      }
    }
    ref_norm = static_cast<float>(std::sqrt(sq));
    const float scale = 0.05f / ref_norm;
    for (auto& [n, slot] : model.NamedParameters()) {
      Tensor g = slot->grad().Clone();
      g.Mul_(scale);
      ref_clipped[n] = g;
    }
  }
  ASSERT_GT(ref_norm, 0.05f);  // clipping must actually engage

  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 42);
    nn::TransformerConfig cfg;
    cfg.vocab_size = 13;
    cfg.max_seq = 4;
    cfg.dim = 8;
    cfg.num_heads = 2;
    cfg.num_layers = 2;
    auto model = std::make_shared<nn::TransformerModel>(cfg, ctx);
    core::FsdpOptions opts;
    opts.auto_wrap_policy = core::ModuleTypePolicy({"TransformerBlock"});
    auto state = core::FullyShard(model, mesh, r, opts);
    Tensor tokens = ops::IndexTensor(
        {(r * 3 + 1) % 13, (r * 5 + 2) % 13, (r + 3) % 13, (r + 4) % 13},
        {1, 4});
    Tensor targets = ops::IndexTensor({2, 3, 4, 5}, {4});
    Tensor loss = ops::CrossEntropy((*model)(tokens), targets);
    autograd::RunBackward(loss);

    const float norm = core::ClipGradNorm(*state, 0.05f);
    ASSERT_NEAR(norm, ref_norm, 1e-3f) << "rank " << r;
    for (int u = 0; u < state->num_units(); ++u) {
      for (auto& [fqn, grad] : state->unit_handle(u).GatherFullGrads()) {
        ASSERT_TRUE(grad.AllClose(ref_clipped.at(fqn), 1e-3f, 1e-6f)) << fqn;
      }
    }
  });
}

TEST(ClipGradNormTest, HybridShardingCountsEachElementOnce) {
  // With F < W each shard group holds a full replica; the norm must not be
  // inflated by the replication factor.
  const int w = 4, f = 2;
  comm::DeviceMesh mesh(w, f);
  std::vector<float> norms(w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 8);
    auto lin = std::make_shared<nn::Linear>(4, 4, false, ctx);
    core::FsdpOptions opts;
    opts.strategy = core::ShardingStrategy::kHybridShard;
    auto state = core::FullyShard(lin, mesh, r, opts);
    Rng rng(1, 0);
    Tensor x = Tensor::Ones({2, 4});
    Tensor y = (*lin)(x);
    autograd::RunBackward(ops::Sum(y));
    norms[r] = core::ClipGradNorm(*state, 1e9f);  // no clip, just the norm
  });
  // All ranks agree, including across replicas.
  for (int r = 1; r < w; ++r) ASSERT_NEAR(norms[r], norms[0], 1e-4f);
  // Reference: local model, same loss summed over... each rank used the
  // same data, so the averaged gradient equals the local gradient.
  nn::InitCtx ctx(Device::kCpu, 8);
  nn::Linear lin(4, 4, false, ctx);
  Tensor y = lin(Tensor::Ones({2, 4}));
  autograd::RunBackward(ops::Sum(y));
  double sq = 0;
  Tensor g = lin.NamedParameters()[0].second->grad();
  for (int64_t i = 0; i < g.numel(); ++i) {
    sq += static_cast<double>(g.data()[i]) * g.data()[i];
  }
  ASSERT_NEAR(norms[0], std::sqrt(sq), 1e-3f);
}

// ---------------------------------------------------------- summon params

TEST(SummonFullParamsTest, ReadAndWriteback) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 12);
    auto lin = std::make_shared<nn::Linear>(3, 3, false, ctx);
    Tensor original = *lin->NamedParameters()[0].second;
    Tensor original_values = original.Clone();
    auto state = core::FullyShard(lin, mesh, r, {});
    // Outside a summon scope the parameter storage is freed.
    ASSERT_FALSE(
        state->unit_handle(0).unsharded_param().storage()->is_allocated());
    {
      core::SummonFullParams summon(*state, /*writeback=*/true);
      Tensor& w_view = *lin->NamedParameters()[0].second;
      ASSERT_TRUE(w_view.AllClose(original_values, 0, 0));
      // SPMD modification: all ranks scale identically.
      w_view.Mul_(2.f);
    }
    ASSERT_FALSE(
        state->unit_handle(0).unsharded_param().storage()->is_allocated());
    auto full = state->FullStateDict();
    Tensor doubled = original_values.Clone();
    doubled.Mul_(2.f);
    ASSERT_TRUE(full[0].second.AllClose(doubled, 1e-6f, 1e-7f));
  });
}

TEST(SummonFullParamsTest, WithoutWritebackDiscardsChanges) {
  const int w = 2;
  comm::DeviceMesh mesh(w, w);
  RunOnRanks(w, [&](int r) {
    nn::InitCtx ctx(Device::kCpu, 13);
    auto lin = std::make_shared<nn::Linear>(3, 3, false, ctx);
    Tensor original_values = lin->NamedParameters()[0].second->Clone();
    auto state = core::FullyShard(lin, mesh, r, {});
    {
      core::SummonFullParams summon(*state);
      lin->NamedParameters()[0].second->Fill_(0.f);
    }
    auto full = state->FullStateDict();
    ASSERT_TRUE(full[0].second.AllClose(original_values, 0, 0));
  });
}

}  // namespace
}  // namespace fsdp
